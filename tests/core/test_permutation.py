"""Unit tests for repro.core.permutation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import Permutation, adjacent_transposition, all_permutations, random_permutation, transposition
from repro.core.permutation import permutations_by_inversions


class TestConstruction:
    def test_identity(self):
        e = Permutation.identity(5)
        assert e.one_line == (0, 1, 2, 3, 4)
        assert e.is_identity()
        assert not e.is_reverse()

    def test_reverse(self):
        w0 = Permutation.reverse(4)
        assert w0.one_line == (3, 2, 1, 0)
        assert w0.is_reverse()
        assert not w0.is_identity()

    def test_empty_permutation(self):
        e = Permutation([])
        assert e.size == 0
        assert e.is_identity()

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            Permutation([0, 0, 1])
        with pytest.raises(ValueError):
            Permutation([1, 2, 3])
        with pytest.raises(ValueError):
            Permutation([0, 2])

    def test_rejects_wrong_types(self):
        with pytest.raises(TypeError):
            Permutation([0.5, 1.5])

    def test_from_one_indexed_round_trip(self):
        sigma = Permutation.from_one_indexed([2, 1, 3, 4])
        assert sigma.one_line == (1, 0, 2, 3)
        assert sigma.one_indexed() == (2, 1, 3, 4)

    def test_from_cycles_matches_composition(self):
        a = Permutation.from_cycles(4, [(0, 1)])
        b = Permutation.from_cycles(4, [(1, 2)])
        ab = Permutation.from_cycles(4, [(0, 1), (1, 2)])
        assert ab == a * b

    def test_from_cycles_one_indexed(self):
        sigma = Permutation.from_cycles(3, [(1, 3)], one_indexed=True)
        assert sigma.one_line == (2, 1, 0)

    def test_from_cycles_rejects_bad_cycles(self):
        with pytest.raises(ValueError):
            Permutation.from_cycles(3, [(0, 0)])
        with pytest.raises(ValueError):
            Permutation.from_cycles(3, [(0, 5)])

    def test_lehmer_round_trip(self):
        for sigma in all_permutations(5):
            assert Permutation.from_lehmer(sigma.lehmer_code()) == sigma

    def test_lehmer_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Permutation.from_lehmer([3, 0, 0])

    def test_unrank_rank_round_trip(self):
        for rank in range(math.factorial(4)):
            assert Permutation.unrank(4, rank).rank() == rank

    def test_unrank_identity_and_reverse(self):
        assert Permutation.unrank(4, 0).is_identity()
        assert Permutation.unrank(4, math.factorial(4) - 1).is_reverse()

    def test_unrank_out_of_range(self):
        with pytest.raises(ValueError):
            Permutation.unrank(3, 6)


class TestGroupStructure:
    def test_composition_definition(self):
        sigma = Permutation([1, 2, 0])
        tau = Permutation([2, 1, 0])
        composed = sigma * tau
        for i in range(3):
            assert composed(i) == sigma(tau(i))

    def test_inverse(self):
        for sigma in all_permutations(4):
            assert (sigma * sigma.inverse()).is_identity()
            assert (sigma.inverse() * sigma).is_identity()

    def test_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            Permutation.identity(3) * Permutation.identity(4)

    def test_power(self):
        sigma = Permutation([1, 2, 3, 0])  # 4-cycle
        assert sigma.power(4).is_identity()
        assert sigma.power(0).is_identity()
        assert sigma.power(-1) == sigma.inverse()
        assert sigma.power(2) == sigma * sigma

    def test_order(self):
        assert Permutation([1, 2, 3, 0]).order() == 4
        assert Permutation([1, 0, 3, 2]).order() == 2
        assert Permutation.identity(6).order() == 1

    def test_conjugate_preserves_cycle_type(self):
        sigma = Permutation([1, 0, 3, 4, 2])
        tau = Permutation([4, 2, 0, 1, 3])
        assert sigma.conjugate(tau).cycle_type() == sigma.cycle_type()

    def test_is_involution(self):
        assert Permutation([1, 0, 2]).is_involution()
        assert not Permutation([1, 2, 0]).is_involution()

    def test_sign_multiplicative(self, s4):
        for sigma in s4[:8]:
            for tau in s4[:8]:
                assert (sigma * tau).sign() == sigma.sign() * tau.sign()


class TestStructure:
    def test_cycles_cover_all_points(self):
        sigma = Permutation([2, 0, 1, 4, 3, 5])
        cycles = sigma.cycles(include_fixed_points=True)
        covered = sorted(x for c in cycles for x in c)
        assert covered == list(range(6))

    def test_cycles_exclude_fixed_points_by_default(self):
        sigma = Permutation([0, 2, 1, 3])
        assert sigma.cycles() == [(1, 2)]

    def test_cycle_type_sorted(self):
        assert Permutation([1, 2, 0, 4, 3]).cycle_type() == (3, 2)

    def test_descents(self):
        assert Permutation([2, 0, 3, 1]).descents() == [0, 2]
        assert Permutation.identity(5).descents() == []
        assert Permutation.reverse(4).descents() == [0, 1, 2]

    def test_inversions_extremes(self):
        assert Permutation.identity(6).inversions() == 0
        assert Permutation.reverse(6).inversions() == 15

    def test_inversion_pairs_count_matches(self):
        for sigma in all_permutations(4):
            assert len(sigma.inversion_pairs()) == sigma.inversions()

    def test_lehmer_sum_is_inversions(self):
        for sigma in all_permutations(5):
            assert sum(sigma.lehmer_code()) == sigma.inversions()

    def test_parity_matches_paper_example(self):
        # (13) = (23)(12)(23) has length 3 => odd
        sigma = Permutation.from_cycles(3, [(1, 3)], one_indexed=True)
        assert sigma.inversions() == 3
        assert sigma.parity() == 1


class TestAction:
    def test_apply_list(self):
        sigma = Permutation([2, 0, 1])
        assert sigma.apply(["a", "b", "c"]) == ["c", "a", "b"]

    def test_apply_numpy(self):
        sigma = Permutation([2, 0, 1])
        out = sigma.apply(np.asarray([10, 20, 30]))
        assert isinstance(out, np.ndarray)
        assert out.tolist() == [30, 10, 20]

    def test_apply_wrong_length(self):
        with pytest.raises(ValueError):
            Permutation.identity(3).apply([1, 2])

    def test_apply_identity_is_noop(self):
        data = list(range(10))
        assert Permutation.identity(10).apply(data) == data

    def test_swap_positions(self):
        sigma = Permutation.identity(4).swap_positions(1, 3)
        assert sigma.one_line == (0, 3, 2, 1)

    def test_swap_positions_out_of_range(self):
        with pytest.raises(ValueError):
            Permutation.identity(3).swap_positions(0, 5)

    def test_getitem_iter_len(self):
        sigma = Permutation([1, 2, 0])
        assert sigma[0] == 1
        assert list(sigma) == [1, 2, 0]
        assert len(sigma) == 3

    def test_hash_and_equality(self):
        a = Permutation([1, 0, 2])
        b = Permutation((1, 0, 2))
        assert a == b
        assert hash(a) == hash(b)
        assert a == (1, 0, 2)
        assert a != Permutation([0, 1, 2])

    def test_repr_str(self):
        sigma = Permutation([1, 0, 2])
        assert "Permutation" in repr(sigma)
        assert str(sigma) == "(0 1)"
        assert str(Permutation.identity(3)) == "e[3]"


class TestEnumeration:
    def test_all_permutations_count(self):
        assert len(list(all_permutations(4))) == 24
        assert len(list(all_permutations(0))) == 1

    def test_all_permutations_lexicographic(self):
        perms = list(all_permutations(3))
        assert perms[0].is_identity()
        assert perms[-1].is_reverse()

    def test_permutations_by_inversions_totals(self):
        groups = permutations_by_inversions(4)
        assert sum(len(v) for v in groups.values()) == 24
        assert len(groups[0]) == 1 and len(groups[6]) == 1

    def test_random_permutation_is_valid(self, rng):
        for _ in range(20):
            sigma = random_permutation(8, rng)
            assert sorted(sigma.one_line) == list(range(8))

    def test_random_permutation_seeded_reproducible(self):
        assert random_permutation(10, 7) == random_permutation(10, 7)


class TestTranspositions:
    def test_transposition(self):
        t = transposition(4, 1, 3)
        assert t.one_line == (0, 3, 2, 1)
        assert t.is_involution()

    def test_transposition_rejects_same_point(self):
        with pytest.raises(ValueError):
            transposition(4, 2, 2)

    def test_adjacent_transposition(self):
        s1 = adjacent_transposition(4, 1)
        assert s1.one_line == (0, 2, 1, 3)
        with pytest.raises(ValueError):
            adjacent_transposition(4, 3)

    def test_adjacent_transpositions_generate_group(self):
        # every permutation of S_4 is a product of adjacent transpositions
        generators = [adjacent_transposition(4, i) for i in range(3)]
        seen = {Permutation.identity(4)}
        frontier = [Permutation.identity(4)]
        while frontier:
            nxt = []
            for sigma in frontier:
                for g in generators:
                    cand = sigma * g
                    if cand not in seen:
                        seen.add(cand)
                        nxt.append(cand)
            frontier = nxt
        assert len(seen) == 24
