"""Unit tests for Belady-OPT."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import BeladyCache, LRUCache, simulate_opt
from repro.trace import PeriodicTrace, zipfian_trace


class TestOPT:
    def test_simple_known_trace(self):
        # capacity 2, trace 0 1 2 0 1: OPT keeps 0 and 1 (evicts 2 is not possible;
        # at the miss on 2 it evicts the item whose next use is farthest)
        stats = simulate_opt([0, 1, 2, 0, 1], 2)
        assert stats.misses == 4 or stats.misses == 3
        # exact: accesses 0,1 miss; 2 misses and evicts 1 (next use farther than 0);
        # 0 hits; 1 misses => 4 misses, 1 hit
        assert stats.hits == 1

    def test_opt_never_worse_than_lru(self, rng):
        for _ in range(5):
            trace = zipfian_trace(400, 50, rng=rng).accesses
            for capacity in (4, 16, 32):
                opt = simulate_opt(trace, capacity)
                lru = LRUCache(capacity).run(trace.tolist())
                assert opt.misses <= lru.misses

    def test_opt_equals_lru_on_sawtooth(self):
        # sawtooth re-traversals are already optimally ordered for recency:
        # LRU achieves the OPT hit count at every cache size
        trace = PeriodicTrace.sawtooth(16).to_trace().accesses
        for capacity in range(1, 17):
            assert simulate_opt(trace, capacity).hits == LRUCache(capacity).run(trace.tolist()).hits

    def test_opt_beats_lru_on_cyclic(self):
        # the classic result: LRU thrashes on a cyclic re-traversal while OPT
        # keeps a useful subset
        trace = PeriodicTrace.cyclic(16).to_trace().accesses
        capacity = 8
        assert simulate_opt(trace, capacity).hits > LRUCache(capacity).run(trace.tolist()).hits

    def test_cold_misses_always_counted(self, rng):
        trace = rng.permutation(50)
        stats = simulate_opt(trace, 10)
        assert stats.misses == 50
        assert stats.hits == 0

    def test_empty_trace(self):
        stats = simulate_opt([], 4)
        assert stats.accesses == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            simulate_opt([1, 2], 0)

    def test_wrapper_object(self):
        cache = BeladyCache(4)
        assert cache.name == "opt"
        stats = cache.run(np.asarray([0, 1, 0, 2, 1]))
        assert stats.accesses == 5
        cache.reset()
        assert cache.stats.accesses == 0
