"""The deprecated ``repro.profiling.pool`` alias forwards to the engine runner."""

from __future__ import annotations

import pytest

from repro.engine import runner


class TestDeprecatedAlias:
    def test_forwards_with_deprecation_warning(self):
        from repro.profiling import pool

        with pytest.warns(DeprecationWarning, match="moved to repro.engine.runner"):
            assert pool.pool_map is runner.pool_map
        with pytest.warns(DeprecationWarning):
            assert pool.check_workers is runner.check_workers

    def test_unknown_attribute_raises(self):
        from repro.profiling import pool

        with pytest.raises(AttributeError):
            pool.no_such_helper

    def test_package_level_import_stays_silent(self, recwarn):
        from repro.profiling import check_workers, pool_map

        assert pool_map is runner.pool_map
        assert check_workers is runner.check_workers
        assert not [w for w in recwarn if issubclass(w.category, DeprecationWarning)]
