"""Trace substrate: containers, generators, synthetic workloads, file I/O, statistics."""

from .trace import PeriodicTrace, Trace
from .generators import (
    blocked_traversal,
    column_major_matrix,
    cyclic_retraversal,
    fixed_inversion_retraversal,
    random_retraversal,
    random_trace,
    repeated_traversals,
    row_major_matrix,
    sawtooth_retraversal,
    strided_traversal,
    tiled_matrix,
    zipfian_trace,
)
from .workloads import (
    attention_parameter_trace,
    gnn_neighbor_trace,
    matrix_multiply_blocked,
    matrix_multiply_ijk,
    mlp_parameter_trace,
    stencil_sweeps,
    stream_copy,
    stream_triad,
)
from .decomposition import (
    PhaseDecomposition,
    phase_decomposition,
    predicted_hits,
    prediction_error,
    retraversal_permutations,
)
from .io import read_npz, read_text, write_npz, write_text
from .stats import TraceStats, locality_score, summarize

__all__ = [
    "PeriodicTrace",
    "Trace",
    "blocked_traversal",
    "column_major_matrix",
    "cyclic_retraversal",
    "fixed_inversion_retraversal",
    "random_retraversal",
    "random_trace",
    "repeated_traversals",
    "row_major_matrix",
    "sawtooth_retraversal",
    "strided_traversal",
    "tiled_matrix",
    "zipfian_trace",
    "attention_parameter_trace",
    "gnn_neighbor_trace",
    "matrix_multiply_blocked",
    "matrix_multiply_ijk",
    "mlp_parameter_trace",
    "stencil_sweeps",
    "stream_copy",
    "stream_triad",
    "PhaseDecomposition",
    "phase_decomposition",
    "predicted_hits",
    "prediction_error",
    "retraversal_permutations",
    "read_npz",
    "read_text",
    "write_npz",
    "write_text",
    "TraceStats",
    "locality_score",
    "summarize",
]
