"""Crash-safe checkpoints: atomic snapshots a killed run resumes from.

A checkpoint *store* is one directory holding numbered snapshot files plus a
single ``MANIFEST.json``.  The manifest is written **once**, when the store
is created — schema version, run *fingerprint*, command, and
:class:`repro.obs.RunManifest` provenance — and never rewritten, so the
per-snapshot write path touches exactly one file.

Each snapshot is self-describing: a one-line JSON header (step number,
SHA-256 and byte count of the payload) followed by the pickled state, the
whole file written to a ``.tmp`` and ``os.replace``\\ d into place.  Readers
never see a half-written snapshot — a crash mid-write leaves only a
``.tmp`` file that discovery ignores — and :func:`load_checkpoint` only
trusts payloads whose recorded checksum matches the bytes on disk; anything
else raises :class:`~repro.resilience.errors.CheckpointIntegrityError`
naming the file and the expected vs. found digest.

The *fingerprint* pins a store to one logical run (job knobs + workload +
engine).  Resuming with a different configuration is a
:class:`~repro.resilience.errors.CheckpointError`, not a silently wrong
bit-for-bit "resumption" of somebody else's state.

Examples
--------
>>> import tempfile
>>> store = tempfile.mkdtemp()
>>> path = write_checkpoint(store, 3, {"position": 1500}, fingerprint="demo-v1")
>>> latest_step(store)
3
>>> load_checkpoint(store, fingerprint="demo-v1").state
{'position': 1500}
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..obs import get_registry
from .errors import CheckpointError, CheckpointIntegrityError

__all__ = [
    "CHECKPOINT_SCHEMA",
    "Checkpoint",
    "latest_step",
    "load_checkpoint",
    "write_checkpoint",
]

#: Schema version of the store layout; bumped on incompatible changes.
CHECKPOINT_SCHEMA = 1

_MANIFEST = "MANIFEST.json"


@dataclass(frozen=True)
class Checkpoint:
    """One loaded snapshot: its step number, restored state, and file path."""

    step: int
    state: Any
    path: Path


def _atomic_write_bytes(path: Path, payload: bytes, *, durable: bool = False) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(payload)
        if durable:
            handle.flush()
            os.fsync(handle.fileno())
    os.replace(tmp, path)


def _read_manifest(directory: Path) -> dict:
    manifest_path = directory / _MANIFEST
    if not manifest_path.exists():
        raise CheckpointError(f"no checkpoint manifest at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise CheckpointIntegrityError(str(manifest_path), reason=f"unreadable manifest: {error}") from error
    schema = manifest.get("schema")
    if schema != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"checkpoint schema mismatch in {manifest_path}: "
            f"store has schema {schema!r}, this build reads {CHECKPOINT_SCHEMA}"
        )
    return manifest


def _check_fingerprint(directory: Path, fingerprint: str, *, verb: str) -> None:
    manifest = _read_manifest(directory)
    if manifest.get("fingerprint") != fingerprint:
        raise CheckpointError(
            f"checkpoint store {directory} belongs to a different run "
            f"(fingerprint {manifest.get('fingerprint')!r}, this run is {fingerprint!r}); "
            f"point --checkpoint at a fresh directory to {verb}"
        )


def _snapshot_steps(directory: Path) -> list[tuple[int, Path]]:
    """All complete snapshots on disk, sorted by step number."""
    found = []
    for path in directory.glob("step-*.ckpt"):
        digits = path.name[len("step-") : -len(".ckpt")]
        if digits.isdigit():
            found.append((int(digits), path))
    found.sort()
    return found


def write_checkpoint(
    directory: str | Path,
    step: int,
    state: Any,
    *,
    fingerprint: str,
    command: str = "checkpoint",
    keep: int = 3,
    durable: bool = False,
) -> Path:
    """Atomically persist one self-checksummed snapshot.

    ``state`` is pickled (numpy arrays, frozen dataclasses and plain
    containers all round-trip); ``fingerprint`` names the logical run the
    store belongs to — a store started by a different run is rejected rather
    than overwritten.  The newest ``keep`` snapshots are retained, older
    files are pruned.  Returns the snapshot's path.

    The tmp-write + ``os.replace`` protocol makes every snapshot safe
    against a *process* crash (the kill/retry scenarios the chaos suite
    exercises) without any fsync; pass ``durable=True`` to additionally
    fsync the file, surviving an OS crash or power loss at ~1ms extra per
    write.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    step = int(step)
    if step < 0:
        raise ValueError(f"step must be >= 0, got {step}")
    if int(keep) < 1:
        raise ValueError(f"keep must be >= 1, got {keep}")

    if (directory / _MANIFEST).exists():
        _check_fingerprint(directory, fingerprint, verb="start fresh")
    else:
        from ..obs import RunManifest

        manifest = {
            "schema": CHECKPOINT_SCHEMA,
            "fingerprint": fingerprint,
            "command": command,
            "provenance": dataclasses.asdict(RunManifest.collect(command, argv=[], seed=None)),
        }
        _atomic_write_bytes(
            directory / _MANIFEST,
            (json.dumps(manifest, indent=2, default=str) + "\n").encode("utf-8"),
            durable=durable,
        )

    payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    header = {"step": step, "sha256": hashlib.sha256(payload).hexdigest(), "bytes": len(payload)}
    snapshot = directory / f"step-{step:08d}.ckpt"
    _atomic_write_bytes(snapshot, json.dumps(header).encode("utf-8") + b"\n" + payload, durable=durable)

    for _, stale in _snapshot_steps(directory)[: -int(keep)]:
        stale.unlink(missing_ok=True)

    registry = get_registry()
    if registry.enabled:
        registry.counter("checkpoint.writes").inc()
        registry.counter("checkpoint.bytes").add(len(payload))
        registry.gauge("checkpoint.step").set(step)
    return snapshot


def latest_step(directory: str | Path) -> int | None:
    """The newest on-disk step, or ``None`` for an absent/empty store."""
    directory = Path(directory)
    if not (directory / _MANIFEST).exists():
        return None
    _read_manifest(directory)
    snapshots = _snapshot_steps(directory)
    return snapshots[-1][0] if snapshots else None


def load_checkpoint(directory: str | Path, *, fingerprint: str | None = None, step: int | None = None) -> Checkpoint:
    """Load the newest (or a specific ``step``'s) verified snapshot.

    Verifies the manifest schema, the run ``fingerprint`` (when given) and
    the snapshot's own header — byte count and SHA-256 — before unpickling;
    any mismatch raises a structured
    :class:`~repro.resilience.errors.CheckpointError` /
    :class:`~repro.resilience.errors.CheckpointIntegrityError` instead of
    resuming from bad state.
    """
    directory = Path(directory)
    manifest = _read_manifest(directory)
    if fingerprint is not None and manifest.get("fingerprint") != fingerprint:
        raise CheckpointError(
            f"checkpoint store {directory} belongs to a different run "
            f"(fingerprint {manifest.get('fingerprint')!r}, expected {fingerprint!r})"
        )
    snapshots = _snapshot_steps(directory)
    if not snapshots:
        raise CheckpointError(f"checkpoint store {directory} has no recorded snapshots")
    if step is not None:
        matches = [(found, path) for found, path in snapshots if found == int(step)]
        if not matches:
            known = [found for found, _ in snapshots]
            raise CheckpointError(f"no step {step} in {directory}; recorded steps: {known}")
        found_step, snapshot = matches[0]
    else:
        found_step, snapshot = snapshots[-1]

    raw = snapshot.read_bytes()
    newline = raw.find(b"\n")
    try:
        header = json.loads(raw[:newline]) if newline > 0 else None
    except json.JSONDecodeError:
        header = None
    if not isinstance(header, dict) or not {"step", "sha256", "bytes"} <= set(header):
        raise CheckpointIntegrityError(str(snapshot), reason="unreadable snapshot header")
    payload = raw[newline + 1 :]
    if len(payload) != int(header["bytes"]):
        raise CheckpointIntegrityError(
            str(snapshot),
            reason="snapshot payload truncated",
            expected=f"{int(header['bytes'])} bytes",
            found=f"{len(payload)} bytes",
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header["sha256"]:
        raise CheckpointIntegrityError(
            str(snapshot), reason="snapshot checksum mismatch", expected=header["sha256"], found=digest
        )
    state = pickle.loads(payload)
    registry = get_registry()
    if registry.enabled:
        registry.counter("checkpoint.loads").inc()
        registry.gauge("checkpoint.resumed_step").set(found_step)
    return Checkpoint(step=found_step, state=state, path=snapshot)
