"""Sharded, parallel execution of profiling jobs.

Two fan-out shapes cover the scale axis of the profiling subsystem:

* **A batch of traces** — :func:`run_jobs` maps :class:`ProfileJob` specs
  (trace array or file path + profiling mode) over a ``multiprocessing``
  worker pool, one job per trace, and collects :class:`ProfileResult`\\ s.
* **Chunks of one long trace** — :func:`parallel_reuse_histogram` splits a
  trace into contiguous chunks, computes a :class:`ChunkPartial` per chunk in
  parallel, and merges the partials *in chunk order* into a reuse-time
  histogram that is bit-for-bit identical to what a single sequential pass
  would produce (asserted in ``tests/profiling/test_engine.py``).

The chunk partial records, besides the within-chunk reuse-time histogram
(computed with vectorised NumPy, so the parallel path is also the fast path
for in-memory arrays), the global position of each item's first and last
access in the chunk.  Merging resolves every cross-chunk reuse exactly: an
item first touched in chunk ``i`` whose most recent prior access lives in
chunk ``j < i`` contributes the same reuse time the sequential pass would
have recorded, and items never seen before count as cold misses.

``workers=1`` runs everything inline (no pool), which keeps single-process
results trivially deterministic and makes the parallel path a pure
performance knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..cache.mrc import MissRatioCurve, mrc_from_trace
from ..engine.job import PROFILE_MODES, check_choice
from ..engine.runner import check_workers, pool_map
from ..obs import get_registry, span
from .reuse import ReuseTimeHistogram
from .shards import shards_mrc

__all__ = [
    "ProfileJob",
    "ProfileResult",
    "run_job",
    "run_jobs",
    "ChunkPartial",
    "chunk_partial",
    "merge_partials",
    "parallel_reuse_histogram",
    "parallel_reuse_mrc",
]

#: Profiling modes (the engine-wide set).
MODES = PROFILE_MODES


@dataclass(frozen=True)
class ProfileJob:
    """Specification of one profiling task (picklable, so pool-dispatchable).

    Exactly one of ``trace`` (an integer array) or ``path`` (a text trace
    file readable by :func:`repro.trace.io.read_text`) must be provided.
    """

    trace: np.ndarray | None = None
    path: str | None = None
    name: str = "trace"
    mode: str = "exact"
    rate: float = 0.01
    smax: int | None = None
    seed: int = 0
    n_seeds: int = 2
    fine_limit: int = 4096
    coarse_per_octave: int = 256
    max_cache_size: int | None = None

    def __post_init__(self):
        if (self.trace is None) == (self.path is None):
            raise ValueError("provide exactly one of trace= or path=")
        check_choice("mode", self.mode, MODES)


@dataclass(frozen=True)
class ProfileResult:
    """Outcome of one :class:`ProfileJob`."""

    name: str
    mode: str
    curve: MissRatioCurve
    accesses: int
    seconds: float

    def rows(self) -> list[dict]:
        """Per-cache-size curve rows for tables and CSV export."""
        return [{"cache_size": c + 1, "miss_ratio": ratio} for c, ratio in enumerate(self.curve.ratios)]

    def summary(self) -> dict:
        """One aggregate row (name, mode, size and timing of the profile)."""
        return {
            "job": self.name,
            "mode": self.mode,
            "accesses": self.accesses,
            "curve_points": self.curve.max_cache_size,
            "seconds": self.seconds,
        }


def _load(job: ProfileJob) -> np.ndarray:
    if job.trace is not None:
        return np.asarray(job.trace)
    from ..trace.io import read_text

    return read_text(Path(job.path)).accesses


def run_job(job: ProfileJob) -> ProfileResult:
    """Execute one profiling job in the current process."""
    arr = _load(job)
    with span("profiling.job", mode=job.mode) as timer:
        if job.mode == "exact":
            curve = mrc_from_trace(arr, max_cache_size=job.max_cache_size)
        elif job.mode == "shards":
            curve = shards_mrc(
                arr,
                job.rate,
                smax=job.smax,
                seed=job.seed,
                n_seeds=job.n_seeds,
                max_cache_size=job.max_cache_size,
            )
        else:  # reuse
            histogram = parallel_reuse_histogram(
                arr,
                workers=1,
                fine_limit=job.fine_limit,
                coarse_per_octave=job.coarse_per_octave,
            )
            curve = histogram.to_mrc(job.max_cache_size or max(histogram.cold, 1))
    get_registry().counter("profiling.accesses", mode=job.mode).add(int(arr.size))
    return ProfileResult(name=job.name, mode=job.mode, curve=curve, accesses=int(arr.size), seconds=timer.seconds)


def run_jobs(jobs: list[ProfileJob], *, workers: int = 1) -> list[ProfileResult]:
    """Run a batch of profiling jobs, fanning across ``workers`` processes.

    Results are returned in job order regardless of completion order.  A
    single ``reuse``-mode job with ``workers > 1`` is sharded *within* the
    trace (parallel chunk partials) instead of occupying one worker.
    """
    workers = check_workers(workers)
    if len(jobs) == 1 and workers > 1 and jobs[0].mode == "reuse":
        job = jobs[0]
        arr = _load(job)
        with span("profiling.parallel_reuse", workers=workers) as timer:
            curve = parallel_reuse_mrc(
                arr,
                workers=workers,
                max_cache_size=job.max_cache_size,
                fine_limit=job.fine_limit,
                coarse_per_octave=job.coarse_per_octave,
            )
        get_registry().counter("profiling.accesses", mode=job.mode).add(int(arr.size))
        return [
            ProfileResult(
                name=job.name,
                mode=job.mode,
                curve=curve,
                accesses=int(arr.size),
                seconds=timer.seconds,
            )
        ]
    return pool_map(run_job, jobs, workers=workers)


# --------------------------------------------------------------------------- #
# Chunked streaming: mergeable partials over one long trace
# --------------------------------------------------------------------------- #
@dataclass
class ChunkPartial:
    """Mergeable profiling state of one contiguous chunk of a trace.

    ``histogram`` holds only the reuse times whose *previous* access lies in
    the same chunk; first accesses per item are deferred to the merge, which
    resolves them against the preceding chunks' ``last_access`` maps.  All
    positions are global trace positions.
    """

    offset: int
    length: int
    histogram: ReuseTimeHistogram
    first_access: dict[int, int] = field(default_factory=dict)
    last_access: dict[int, int] = field(default_factory=dict)


def chunk_partial(
    chunk: np.ndarray,
    offset: int,
    *,
    fine_limit: int = 4096,
    coarse_per_octave: int = 256,
) -> ChunkPartial:
    """Profile one chunk independently of every other chunk (vectorised)."""
    arr = np.asarray(chunk, dtype=np.int64)
    histogram = ReuseTimeHistogram(fine_limit=fine_limit, coarse_per_octave=coarse_per_octave)
    n = arr.size
    if n == 0:
        return ChunkPartial(offset=int(offset), length=0, histogram=histogram)
    # Previous occurrence of each reference within the chunk, via a stable
    # sort: equal items end up adjacent in access order.
    order = np.argsort(arr, kind="stable")
    sorted_items = arr[order]
    same = sorted_items[1:] == sorted_items[:-1]
    prev = np.full(n, -1, dtype=np.int64)
    prev[order[1:][same]] = order[:-1][same]

    repeat = prev >= 0
    histogram.record_reuses(np.nonzero(repeat)[0] - prev[repeat])

    first_positions = np.nonzero(~repeat)[0]
    last_mask = np.ones(n, dtype=bool)
    last_mask[order[:-1][same]] = False
    last_positions = np.nonzero(last_mask)[0]
    offset = int(offset)
    first_access = {int(arr[i]): offset + int(i) for i in first_positions}
    last_access = {int(arr[i]): offset + int(i) for i in last_positions}
    return ChunkPartial(
        offset=offset,
        length=int(n),
        histogram=histogram,
        first_access=first_access,
        last_access=last_access,
    )


def merge_partials(partials: list[ChunkPartial]) -> ReuseTimeHistogram:
    """Merge chunk partials (sorted by offset) into the sequential-pass histogram."""
    if not partials:
        raise ValueError("need at least one chunk partial to merge")
    ordered = sorted(partials, key=lambda p: p.offset)
    first = ordered[0]
    merged = ReuseTimeHistogram(
        fine_limit=first.histogram.fine_limit,
        coarse_per_octave=first.histogram.coarse_per_octave,
    )
    last_seen: dict[int, int] = {}
    for partial in ordered:
        merged.merge(partial.histogram)
        # Resolve this chunk's first accesses against everything before it;
        # each item only reads its own last_seen entry, so order is free.
        for item, position in partial.first_access.items():
            previous = last_seen.get(item)
            if previous is None:
                merged.record_cold()
            else:
                merged.record_reuse(position - previous)
        last_seen.update(partial.last_access)
    return merged


def _chunk_worker(args: tuple[np.ndarray, int, int, int]) -> ChunkPartial:
    chunk, offset, fine_limit, coarse_per_octave = args
    return chunk_partial(chunk, offset, fine_limit=fine_limit, coarse_per_octave=coarse_per_octave)


def parallel_reuse_histogram(
    trace: np.ndarray,
    *,
    workers: int = 1,
    chunks: int | None = None,
    fine_limit: int = 4096,
    coarse_per_octave: int = 256,
) -> ReuseTimeHistogram:
    """Reuse-time histogram of a trace, computed over parallel chunk partials.

    The result is independent of ``workers`` and ``chunks`` (bit-identical to
    a single sequential pass); both knobs only change how the work is spread.
    """
    workers = check_workers(workers)
    arr = np.asarray(trace, dtype=np.int64)
    if arr.size == 0:
        raise ValueError("cannot profile an empty trace")
    pieces = max(1, int(chunks) if chunks is not None else workers)
    pieces = min(pieces, arr.size)
    splits = np.array_split(arr, pieces)
    offsets = np.cumsum([0] + [len(s) for s in splits[:-1]])
    tasks = [(split, int(offset), fine_limit, coarse_per_octave) for split, offset in zip(splits, offsets)]
    partials = pool_map(_chunk_worker, tasks, workers=workers)
    return merge_partials(partials)


def parallel_reuse_mrc(
    trace: np.ndarray,
    *,
    workers: int = 1,
    chunks: int | None = None,
    max_cache_size: int | None = None,
    fine_limit: int = 4096,
    coarse_per_octave: int = 256,
) -> MissRatioCurve:
    """Miss-ratio curve from :func:`parallel_reuse_histogram` via the AET model."""
    histogram = parallel_reuse_histogram(
        trace,
        workers=workers,
        chunks=chunks,
        fine_limit=fine_limit,
        coarse_per_octave=coarse_per_octave,
    )
    return histogram.to_mrc(max_cache_size or max(histogram.cold, 1))
