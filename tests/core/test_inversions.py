"""Unit tests for repro.core.inversions."""

from __future__ import annotations

import pytest

from repro.core import (
    FenwickTree,
    count_inversions,
    count_inversions_fenwick,
    count_inversions_mergesort,
    count_inversions_naive,
    count_inversions_numpy,
    inversion_vector,
    left_inversion_counts,
    max_inversions,
)
from repro.core import Permutation, random_permutation


ALL_IMPLEMENTATIONS = [
    count_inversions_naive,
    count_inversions_numpy,
    count_inversions_mergesort,
    count_inversions_fenwick,
    count_inversions,
]


class TestFenwickTree:
    def test_prefix_sums(self):
        tree = FenwickTree(8)
        for i in [0, 3, 3, 7]:
            tree.add(i)
        assert tree.prefix_sum(-1) == 0
        assert tree.prefix_sum(0) == 1
        assert tree.prefix_sum(2) == 1
        assert tree.prefix_sum(3) == 3
        assert tree.prefix_sum(7) == 4
        assert tree.prefix_sum(100) == 4
        assert tree.total == 4

    def test_range_and_suffix_sums(self):
        tree = FenwickTree(6)
        for i in range(6):
            tree.add(i, i)
        assert tree.range_sum(2, 4) == 2 + 3 + 4
        assert tree.range_sum(4, 2) == 0
        assert tree.suffix_sum(3) == 3 + 4 + 5

    def test_negative_delta(self):
        tree = FenwickTree(4)
        tree.add(2, 5)
        tree.add(2, -3)
        assert tree.prefix_sum(3) == 2

    def test_out_of_range(self):
        tree = FenwickTree(4)
        with pytest.raises(IndexError):
            tree.add(4)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            FenwickTree(-1)

    def test_zero_size_tree(self):
        tree = FenwickTree(0)
        assert tree.prefix_sum(0) == 0


class TestCountImplementationsAgree:
    @pytest.mark.parametrize("impl", ALL_IMPLEMENTATIONS)
    def test_known_values(self, impl):
        assert impl([]) == 0
        assert impl([5]) == 0
        assert impl([0, 1, 2, 3]) == 0
        assert impl([3, 2, 1, 0]) == 6
        assert impl([1, 0, 2, 3]) == 1
        assert impl([2, 0, 3, 1]) == 3

    @pytest.mark.parametrize("impl", ALL_IMPLEMENTATIONS)
    def test_matches_naive_on_random_sequences(self, impl, rng):
        for _ in range(20):
            seq = rng.integers(0, 30, size=int(rng.integers(0, 40)))
            assert impl(seq) == count_inversions_naive(seq)

    @pytest.mark.parametrize("impl", ALL_IMPLEMENTATIONS)
    def test_handles_duplicates(self, impl):
        assert impl([2, 2, 1, 1]) == 4
        assert impl([1, 1, 1]) == 0

    def test_dispatcher_large_input_uses_fenwick_path(self, rng):
        seq = rng.permutation(3000)
        assert count_inversions(seq) == count_inversions_fenwick(seq)


class TestInversionIdentities:
    def test_max_inversions(self):
        assert max_inversions(0) == 0
        assert max_inversions(1) == 0
        assert max_inversions(5) == 10
        with pytest.raises(ValueError):
            max_inversions(-1)

    def test_reverse_attains_max(self):
        for m in range(2, 8):
            assert Permutation.reverse(m).inversions() == max_inversions(m)

    def test_inverse_has_same_inversions(self, rng):
        for _ in range(10):
            sigma = random_permutation(20, rng)
            assert sigma.inversions() == sigma.inverse().inversions()

    def test_reverse_complement_identity(self, rng):
        # ℓ(w0 * sigma) = max - ℓ(sigma)
        w0 = Permutation.reverse(10)
        for _ in range(10):
            sigma = random_permutation(10, rng)
            assert (w0 * sigma).inversions() == max_inversions(10) - sigma.inversions()

    def test_inversion_vector_sums_to_total(self, s5):
        for sigma in s5:
            assert int(inversion_vector(sigma.one_line).sum()) == sigma.inversions()

    def test_inversion_vector_is_lehmer_code(self, s4):
        for sigma in s4:
            assert tuple(inversion_vector(sigma.one_line)) == sigma.lehmer_code()

    def test_left_inversion_counts_sum(self, s5):
        for sigma in s5:
            assert int(left_inversion_counts(sigma.one_line).sum()) == sigma.inversions()

    def test_left_inversion_counts_definition(self):
        word = [3, 0, 2, 1]
        counts = left_inversion_counts(word)
        assert counts.tolist() == [0, 1, 1, 2]

    def test_empty_vectors(self):
        assert inversion_vector([]).size == 0
        assert left_inversion_counts([]).size == 0
