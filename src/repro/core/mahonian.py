"""Mahonian combinatorics and the appendix VIII-F characterisations.

The appendix of the paper observes three facts about the rank structure of the
locality poset, all reproduced here as executable functions:

1. The number of permutations of :math:`S_m` with exactly ``n`` inversions is
   the Mahonian number ``M(m, n)`` (:func:`mahonian_number`,
   :func:`mahonian_row`).
2. The cache-hit vectors attainable at inversion level ``n`` correspond to the
   integer partitions of ``n`` into at most ``m - 1`` parts of size at most
   ``m - 1`` (:func:`hit_vector_partition`, :func:`partitions_at_level`).
3. The integral of the *normalised truncated miss vector* is the same for all
   permutations with equal inversion number and decreases linearly from 1 at
   the identity to 1/2 at the sawtooth, with slope ``1 / (m (m - 1))`` per
   inversion (:func:`truncated_miss_integral`).

The module also provides direct samplers/enumerators of permutations with a
prescribed inversion number, used by the figure-1 benchmark for sizes where
full enumeration of :math:`S_m` is too large.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from functools import lru_cache

import numpy as np

from .._util import check_nonnegative_int, ensure_rng
from .hits import cache_hit_vector, reuse_distance_histogram
from .inversions import max_inversions
from .permutation import Permutation

__all__ = [
    "mahonian_number",
    "mahonian_row",
    "mahonian_triangle",
    "permutations_with_inversions",
    "random_permutation_with_inversions",
    "hit_vector_partition",
    "partitions_at_level",
    "partition_counts_at_level",
    "integer_partitions",
    "truncated_miss_integral",
    "truncated_miss_integral_by_level",
]


# --------------------------------------------------------------------------- #
# Mahonian numbers
# --------------------------------------------------------------------------- #
@lru_cache(maxsize=None)
def _mahonian_row_cached(m: int) -> tuple[int, ...]:
    """Row ``m`` of the Mahonian triangle computed by polynomial convolution.

    The generating function is the Gaussian factorial
    :math:`\\prod_{k=1}^{m} (1 + q + \\dots + q^{k-1})`.
    """
    row = np.array([1], dtype=object)
    for k in range(2, m + 1):
        factor = np.ones(k, dtype=object)
        row = np.convolve(row, factor)
    return tuple(int(x) for x in row)


def mahonian_row(m: int) -> tuple[int, ...]:
    """All Mahonian numbers ``M(m, 0), ..., M(m, m(m-1)/2)`` for ``S_m``.

    The entries sum to ``m!`` and the sequence is symmetric and unimodal.
    """
    m = check_nonnegative_int(m, "m")
    if m == 0:
        return (1,)
    return _mahonian_row_cached(m)


def mahonian_number(m: int, n: int) -> int:
    """Number of permutations of ``S_m`` with exactly ``n`` inversions."""
    m = check_nonnegative_int(m, "m")
    n = check_nonnegative_int(n, "n")
    row = mahonian_row(m)
    return row[n] if n < len(row) else 0


def mahonian_triangle(max_m: int) -> list[tuple[int, ...]]:
    """Rows ``1 .. max_m`` of the Mahonian triangle."""
    max_m = check_nonnegative_int(max_m, "max_m")
    return [mahonian_row(m) for m in range(1, max_m + 1)]


# --------------------------------------------------------------------------- #
# Enumeration / sampling at fixed inversion number
# --------------------------------------------------------------------------- #
def permutations_with_inversions(m: int, n: int) -> Iterator[Permutation]:
    """Yield every permutation of ``S_m`` with exactly ``n`` inversions.

    Enumerates Lehmer codes ``(c_0, ..., c_{m-1})`` with ``0 <= c_i <= m-1-i``
    summing to ``n`` — avoiding a full ``m!`` sweep, so the cost is
    proportional to ``M(m, n)`` times ``m``.
    """
    m = check_nonnegative_int(m, "m")
    n = check_nonnegative_int(n, "n")
    if n > max_inversions(m):
        return

    code = [0] * m

    def rec(i: int, remaining: int) -> Iterator[Permutation]:
        """Yield permutations extending ``code`` with ``remaining`` inversions."""
        if i == m:
            if remaining == 0:
                yield Permutation.from_lehmer(code)
            return
        # maximum inversions still placeable from position i+1 onwards
        tail_max = max_inversions(m - i - 1)
        hi = min(m - 1 - i, remaining)
        lo = max(0, remaining - tail_max)
        for c in range(lo, hi + 1):
            code[i] = c
            yield from rec(i + 1, remaining - c)
        code[i] = 0

    yield from rec(0, n)


def _randint_below(generator: np.random.Generator, n: int) -> int:
    """A uniform integer in ``[0, n)`` for arbitrarily large ``n``.

    Mahonian counts overflow 64-bit integers already around ``m ≈ 30``, so the
    weighted Lehmer-digit sampler cannot use ``Generator.integers`` directly;
    this helper assembles the value from 63-bit chunks with rejection
    sampling, staying exactly uniform.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if n <= (1 << 63) - 1:
        return int(generator.integers(n))
    bits = n.bit_length()
    while True:
        value = 0
        remaining = bits
        while remaining > 0:
            take = min(remaining, 63)
            value = (value << take) | int(generator.integers(1 << take))
            remaining -= take
        if value < n:
            return value


def random_permutation_with_inversions(m: int, n: int, rng: np.random.Generator | int | None = None) -> Permutation:
    """Draw a uniformly random permutation of ``S_m`` with exactly ``n`` inversions.

    Samples the Lehmer code left to right; the conditional weight of choosing
    ``c`` at position ``i`` is the number of completions, which is a Mahonian
    number of the remaining suffix — so the draw is exactly uniform over the
    ``M(m, n)`` permutations at that level.
    """
    m = check_nonnegative_int(m, "m")
    n = check_nonnegative_int(n, "n")
    if n > max_inversions(m):
        raise ValueError(f"S_{m} has no permutation with {n} inversions")
    generator = ensure_rng(rng)
    code = []
    remaining = n
    for i in range(m):
        slots = m - 1 - i  # max value of this Lehmer digit
        suffix_size = m - i - 1
        weights = []
        choices = []
        for c in range(0, min(slots, remaining) + 1):
            rest = remaining - c
            if rest <= max_inversions(suffix_size):
                weights.append(mahonian_number(suffix_size, rest))
                choices.append(c)
        total = sum(weights)
        if total == 0:
            raise RuntimeError("sampler ran out of completions; this should not happen")
        pick = _randint_below(generator, total)
        acc = 0
        for c, w in zip(choices, weights):
            acc += w
            if pick < acc:
                code.append(c)
                remaining -= c
                break
    return Permutation.from_lehmer(code)


# --------------------------------------------------------------------------- #
# Hit vectors as integer partitions
# --------------------------------------------------------------------------- #
def integer_partitions(
    n: int, *, max_part: int | None = None, max_parts: int | None = None
) -> Iterator[tuple[int, ...]]:
    """Yield the integer partitions of ``n`` in decreasing-part canonical form.

    Optional bounds restrict the largest part and the number of parts, which is
    what the hit-vector characterisation needs (parts ≤ m-1, at most m-1
    parts — a part of size ``p`` is an access with stack distance ``m - p``...
    see :func:`hit_vector_partition`).
    """
    n = check_nonnegative_int(n, "n")
    cap = n if max_part is None else min(max_part, n)

    def rec(remaining: int, largest: int, length: int) -> Iterator[tuple[int, ...]]:
        """Yield partitions of ``remaining`` with parts at most ``largest``."""
        if remaining == 0:
            yield ()
            return
        if max_parts is not None and length >= max_parts:
            return
        for part in range(min(largest, remaining), 0, -1):
            for rest in rec(remaining - part, part, length + 1):
                yield (part,) + rest

    if n == 0:
        yield ()
        return
    yield from rec(n, cap, 0)


def hit_vector_partition(sigma: Permutation | Sequence[int]) -> tuple[int, ...]:
    """The integer partition associated with a re-traversal's hit vector.

    Each re-traversal access with stack distance ``d < m`` contributes a part
    of size ``m - d`` (the number of cache sizes at which that access hits
    below the trivially-hitting size ``m``).  The parts sum to
    :math:`\\sum_{c=1}^{m-1} hits_c = \\ell(\\sigma)` (Theorem 2), so the hit
    vector of a permutation at inversion level ``n`` *is* an integer partition
    of ``n`` with parts at most ``m - 1`` — the appendix VIII-F observation.
    """
    sigma = sigma if isinstance(sigma, Permutation) else Permutation(sigma)
    m = sigma.size
    hist = reuse_distance_histogram(sigma)
    parts: list[int] = []
    for d in range(1, m):  # stack distances below m
        parts.extend([m - d] * int(hist[d - 1]))
    return tuple(sorted(parts, reverse=True))


def partitions_at_level(m: int, n: int) -> set[tuple[int, ...]]:
    """Distinct hit-vector partitions realised by permutations of ``S_m`` at level ``n``.

    Enumerates the permutations with ``n`` inversions (not the whole group),
    maps each to its partition, and returns the distinct set.
    """
    return {hit_vector_partition(sigma) for sigma in permutations_with_inversions(m, n)}


def partition_counts_at_level(m: int, n: int) -> dict[tuple[int, ...], int]:
    """How many permutations at inversion level ``n`` realise each partition.

    Counting these per-partition multiplicities in closed form is the open
    problem stated at the end of the appendix; this function provides the
    empirical counts.  The values sum to the Mahonian number ``M(m, n)``.
    """
    counts: dict[tuple[int, ...], int] = {}
    for sigma in permutations_with_inversions(m, n):
        key = hit_vector_partition(sigma)
        counts[key] = counts.get(key, 0) + 1
    return counts


# --------------------------------------------------------------------------- #
# Integral of the normalised truncated miss vector
# --------------------------------------------------------------------------- #
def truncated_miss_integral(sigma: Permutation | Sequence[int]) -> float:
    """Mean of the normalised truncated miss vector of a re-traversal.

    The *truncated* miss vector drops the last entry (cache size ``m``, where
    every re-traversal access hits); each remaining entry is the re-traversal
    miss ratio ``1 - hits_c / m`` for ``c = 1 .. m-1``.  Averaging (a discrete
    integral over the normalised cache-size axis) gives

    .. math::

       1 - \\frac{\\ell(\\sigma)}{m (m - 1)}

    which equals 1 for the identity and 1/2 for the sawtooth and drops by
    ``1 / (m (m - 1))`` per inversion — the appendix VIII-F claim.
    """
    sigma = sigma if isinstance(sigma, Permutation) else Permutation(sigma)
    m = sigma.size
    if m < 2:
        raise ValueError("truncated miss integral requires at least two items")
    vec = cache_hit_vector(sigma)[: m - 1].astype(np.float64)
    miss = 1.0 - vec / m
    return float(miss.mean())


def truncated_miss_integral_by_level(m: int) -> dict[int, float]:
    """The (constant) truncated-miss integral at every inversion level of ``S_m``.

    Uses the closed form implied by Theorem 2; the experiment benchmark checks
    the enumerated values agree with this.
    """
    m = check_nonnegative_int(m, "m")
    if m < 2:
        raise ValueError("requires m >= 2")
    return {n: 1.0 - n / (m * (m - 1)) for n in range(max_inversions(m) + 1)}
