"""Unit tests for the trace-level stack-distance algorithms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import (
    COLD,
    LRUCache,
    StackDistanceStream,
    hit_counts,
    reuse_intervals,
    stack_distance_histogram,
    stack_distances,
    stack_distances_naive,
    stack_distances_vectorized,
    stack_distances_with_previous,
)
from repro.core import random_permutation, stack_distances as periodic_stack_distances
from repro.trace import PeriodicTrace, zipfian_trace


class TestReuseIntervals:
    def test_paper_example_abcabc(self):
        # Definition 4: in abcabc the (second) a has interval 2 distinct... the
        # count of accesses strictly between the two a's is 2 here because we
        # assign the interval to the later access: positions 0 and 3.
        intervals = reuse_intervals([0, 1, 2, 0, 1, 2])
        assert intervals.tolist()[:3] == [COLD, COLD, COLD]
        assert intervals.tolist()[3:] == [2, 2, 2]

    def test_adjacent_repeat(self):
        assert reuse_intervals([7, 7]).tolist() == [COLD, 0]

    def test_empty(self):
        assert reuse_intervals([]).size == 0

    def test_rejects_float_trace(self):
        with pytest.raises(TypeError):
            reuse_intervals(np.asarray([0.5, 1.5]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            reuse_intervals(np.zeros((2, 2), dtype=int))


class TestStackDistances:
    def test_known_trace(self):
        # a b c c b a: stack distances of the second half are 1, 2, 3
        distances = stack_distances([0, 1, 2, 2, 1, 0])
        assert distances.tolist() == [COLD, COLD, COLD, 1, 2, 3]

    def test_abcabc(self):
        distances = stack_distances([0, 1, 2, 0, 1, 2])
        assert distances.tolist() == [COLD, COLD, COLD, 3, 3, 3]

    def test_fenwick_matches_naive_on_random_traces(self, rng):
        for _ in range(10):
            trace = rng.integers(0, 25, size=int(rng.integers(1, 300)))
            assert np.array_equal(stack_distances(trace), stack_distances_naive(trace))

    def test_matches_periodic_closed_form(self, rng):
        for _ in range(5):
            sigma = random_permutation(20, rng)
            trace = PeriodicTrace(sigma).to_trace().accesses
            measured = stack_distances(trace)[20:]
            assert np.array_equal(measured, periodic_stack_distances(sigma))

    def test_repeated_single_item(self):
        distances = stack_distances([3] * 5)
        assert distances.tolist() == [COLD, 1, 1, 1, 1]

    def test_empty(self):
        assert stack_distances([]).size == 0


class TestVectorizedStackDistances:
    """The loop-free merge-count pass must be bit-identical to the Fenwick one."""

    def test_known_traces(self):
        assert stack_distances_vectorized([0, 1, 2, 2, 1, 0]).tolist() == [COLD, COLD, COLD, 1, 2, 3]
        assert stack_distances_vectorized([0, 1, 2, 0, 1, 2]).tolist() == [COLD, COLD, COLD, 3, 3, 3]
        assert stack_distances_vectorized([3] * 5).tolist() == [COLD, 1, 1, 1, 1]
        assert stack_distances_vectorized([]).size == 0
        assert stack_distances_vectorized([9]).tolist() == [COLD]

    def test_matches_fenwick_on_random_traces(self, rng):
        for _ in range(10):
            trace = rng.integers(0, 25, size=int(rng.integers(1, 300)))
            assert np.array_equal(stack_distances_vectorized(trace), stack_distances(trace))

    def test_matches_fenwick_on_zipf_trace(self):
        trace = zipfian_trace(6000, 400, exponent=0.9, rng=4).accesses
        assert np.array_equal(stack_distances_vectorized(trace), stack_distances(trace))

    def test_matches_fenwick_on_periodic_retraversals(self, rng):
        for _ in range(5):
            sigma = random_permutation(24, rng)
            trace = PeriodicTrace(sigma).to_trace().accesses
            assert np.array_equal(stack_distances_vectorized(trace), stack_distances(trace))

    def test_all_cold_and_power_of_two_padding_edges(self):
        # no reuse arcs at all
        assert stack_distances_vectorized(np.arange(7)).tolist() == [COLD] * 7
        # lengths around powers of two exercise the sentinel padding
        for n in (1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33):
            trace = np.arange(n) % max(1, n // 2)
            assert np.array_equal(stack_distances_vectorized(trace), stack_distances(trace))


class TestHistogramAndHits:
    def test_histogram_counts_and_cold(self):
        hist, cold = stack_distance_histogram([0, 1, 2, 2, 1, 0])
        assert cold == 3
        assert hist.tolist() == [1, 1, 1]

    def test_histogram_max_distance_truncation(self):
        hist, cold = stack_distance_histogram([0, 1, 2, 2, 1, 0], max_distance=2)
        assert hist.tolist() == [1, 1]
        assert cold == 3

    def test_hit_counts_match_lru_simulation(self, rng):
        trace = zipfian_trace(300, 30, rng=rng).accesses
        hits = hit_counts(trace)
        for c in (1, 3, 10, 30):
            assert int(hits[c - 1]) == LRUCache(c).run(trace.tolist()).hits

    def test_hit_counts_monotone(self, rng):
        trace = zipfian_trace(200, 25, rng=rng).accesses
        hits = hit_counts(trace)
        assert np.all(np.diff(hits) >= 0)

    def test_hit_counts_custom_max_cache_size(self, rng):
        trace = zipfian_trace(100, 20, rng=rng).accesses
        hits = hit_counts(trace, max_cache_size=5)
        assert hits.size == 5

    def test_hit_counts_empty_trace(self):
        assert hit_counts([]).size == 0

    def test_all_cold_trace(self):
        hits = hit_counts(list(range(10)))
        assert hits.tolist() == [0] * 10


class TestStackDistanceStream:
    def test_single_chunk_equals_one_shot(self, rng):
        trace = zipfian_trace(400, 40, rng=rng).accesses
        assert np.array_equal(StackDistanceStream().feed(trace), stack_distances_vectorized(trace))

    def test_chunked_is_bit_identical_for_every_chunk_size(self, rng):
        trace = zipfian_trace(500, 35, rng=rng).accesses
        want = stack_distances_vectorized(trace)
        for chunk in (1, 2, 3, 7, 64, 499, 500, 1000):
            stream = StackDistanceStream()
            parts = [stream.feed(trace[s : s + chunk]) for s in range(0, trace.size, chunk)]
            assert np.array_equal(np.concatenate(parts), want), f"chunk={chunk}"

    def test_empty_chunks_are_no_ops(self):
        stream = StackDistanceStream()
        assert stream.feed([]).size == 0
        stream.feed([1, 2, 1])
        clock = stream.clock
        assert stream.feed(np.zeros(0, dtype=np.int64)).size == 0
        assert stream.clock == clock

    def test_clock_and_footprint_track_the_stream(self):
        stream = StackDistanceStream()
        stream.feed([5, 5, 6])
        stream.feed([7, 5])
        assert stream.clock == 5
        assert stream.footprint == 3

    def test_cross_chunk_reuse_gets_whole_stream_distance(self):
        stream = StackDistanceStream()
        stream.feed([1, 2])
        # [1, 2, | 2, 3, 2, 1]: distances 1, COLD, 2, 3 for the second chunk
        assert stream.feed([2, 3, 2, 1]).tolist() == [1, COLD, 2, 3]

    def test_rejects_non_integer_and_multidimensional_chunks(self):
        stream = StackDistanceStream()
        with pytest.raises(TypeError):
            stream.feed(np.asarray([1.5, 2.5]))
        with pytest.raises(ValueError):
            stream.feed(np.zeros((2, 2), dtype=np.int64))


class TestStackDistancesWithPrevious:
    def test_previous_positions(self):
        distances, previous = stack_distances_with_previous([4, 7, 4, 4, 7])
        assert previous.tolist() == [-1, -1, 0, 2, 1]
        assert distances.tolist() == [COLD, COLD, 2, 1, 2]

    def test_suffix_identity_behind_per_phase_profiles(self, rng):
        """Accesses whose previous access falls inside a suffix keep their
        whole-stream distance there; earlier reuses become cold — the
        identity the replay engine uses for free oracle profiles."""
        trace = zipfian_trace(300, 25, rng=rng).accesses
        distances, previous = stack_distances_with_previous(trace)
        for start in (0, 1, 57, 150, 299):
            suffix = stack_distances_vectorized(trace[start:])
            adjusted = np.where(previous[start:] >= start, distances[start:], np.int64(COLD))
            assert np.array_equal(adjusted, suffix), f"suffix start={start}"
