"""The (strong) Bruhat order on the symmetric group.

The paper orders re-traversals by locality through the Bruhat order
:math:`\\leq_B` on :math:`S_m`: moving up one covering step
:math:`\\sigma \\lhd_B \\tau` adds exactly one inversion and (Theorem 3)
improves the miss ratio at exactly one cache size.  This module provides

* the comparison :func:`bruhat_leq` via the Ehresmann tableau criterion,
* the covering relation :func:`is_covering` and the enumeration of covers /
  cocovers used by the covering graph and by ChainFind,
* the left *weak* order for comparison experiments (the weak order only allows
  adjacent transpositions on the right, i.e. swapping neighbouring accesses).

All functions accept :class:`~repro.core.permutation.Permutation` objects.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from .permutation import Permutation

__all__ = [
    "bruhat_leq",
    "bruhat_less",
    "is_covering",
    "covers",
    "cocovers",
    "covering_transpositions",
    "weak_order_leq",
    "weak_covers",
    "interval",
]


def bruhat_leq(sigma: Permutation, tau: Permutation) -> bool:
    """Return ``True`` when ``sigma <=_B tau`` in the (strong) Bruhat order.

    Implements the Ehresmann tableau criterion: for every prefix length ``k``,
    sort the first ``k`` entries of each one-line word increasingly; then
    ``sigma <= tau`` iff every entry of the sorted ``sigma``-prefix is ``<=``
    the corresponding entry of the sorted ``tau``-prefix.

    Complexity ``O(m^2 log m)`` — fine for the group sizes the covering graph
    is enumerated at.
    """
    if sigma.size != tau.size:
        raise ValueError(f"permutations act on different sizes ({sigma.size} vs {tau.size})")
    m = sigma.size
    if m == 0:
        return True
    a = sigma.to_array()
    b = tau.to_array()
    for k in range(1, m):
        pa = np.sort(a[:k])
        pb = np.sort(b[:k])
        if np.any(pa > pb):
            return False
    return True


def bruhat_less(sigma: Permutation, tau: Permutation) -> bool:
    """Strict Bruhat comparison ``sigma <_B tau``."""
    return sigma != tau and bruhat_leq(sigma, tau)


def is_covering(sigma: Permutation, tau: Permutation) -> bool:
    """Return ``True`` when ``sigma ◁_B tau`` (``tau`` covers ``sigma``).

    Equivalent characterisation used here: ``tau`` is obtained from ``sigma``
    by swapping the values at two positions ``i < j`` with
    ``sigma(i) < sigma(j)`` and ``ℓ(tau) = ℓ(sigma) + 1`` — i.e. no position
    ``k`` strictly between ``i`` and ``j`` holds a value strictly between
    ``sigma(i)`` and ``sigma(j)``.
    """
    if sigma.size != tau.size:
        raise ValueError(f"permutations act on different sizes ({sigma.size} vs {tau.size})")
    diff = [i for i in range(sigma.size) if sigma[i] != tau[i]]
    if len(diff) != 2:
        return False
    i, j = diff
    if sigma[i] != tau[j] or sigma[j] != tau[i]:
        return False
    lo, hi = (i, j) if i < j else (j, i)
    if sigma[lo] > sigma[hi]:
        return False  # the swap removes an inversion; it moves down, not up
    a, b = sigma[lo], sigma[hi]
    return not any(a < sigma[k] < b for k in range(lo + 1, hi))


def covering_transpositions(sigma: Permutation) -> Iterator[tuple[int, int]]:
    """Yield position pairs ``(i, j)``, ``i < j``, whose swap covers ``sigma``.

    Swapping the values at such a pair yields ``tau`` with
    ``sigma ◁_B tau``.  There are at most ``O(m^2)`` candidates but the number
    of actual covers is bounded by the number of non-inversions.
    """
    m = sigma.size
    word = sigma.one_line
    for i in range(m):
        for j in range(i + 1, m):
            if word[i] >= word[j]:
                continue
            a, b = word[i], word[j]
            if any(a < word[k] < b for k in range(i + 1, j)):
                continue
            yield (i, j)


def covers(sigma: Permutation) -> list[Permutation]:
    """All permutations ``tau`` with ``sigma ◁_B tau`` (one Bruhat step up).

    These are exactly the re-orderings reachable by ChainFind from ``sigma``
    in a single move; each has one more inversion and, by Theorem 3, a miss
    ratio curve that is pointwise no worse and strictly better at exactly one
    cache size.
    """
    return [sigma.swap_positions(i, j) for i, j in covering_transpositions(sigma)]


def cocovers(sigma: Permutation) -> list[Permutation]:
    """All permutations ``tau`` with ``tau ◁_B sigma`` (one Bruhat step down)."""
    m = sigma.size
    word = sigma.one_line
    out = []
    for i in range(m):
        for j in range(i + 1, m):
            if word[i] <= word[j]:
                continue
            a, b = word[j], word[i]
            if any(a < word[k] < b for k in range(i + 1, j)):
                continue
            out.append(sigma.swap_positions(i, j))
    return out


def weak_order_leq(sigma: Permutation, tau: Permutation) -> bool:
    """Right weak order comparison ``sigma <=_R tau``.

    ``sigma <=_R tau`` iff the inversion *set* of ``sigma`` (as pairs of
    values) is contained in that of ``tau``.  The weak order is a subrelation
    of the Bruhat order; it is included for ablation experiments on restricted
    reordering moves (only adjacent accesses may be exchanged).
    """
    if sigma.size != tau.size:
        raise ValueError(f"permutations act on different sizes ({sigma.size} vs {tau.size})")

    def value_inversions(p: Permutation) -> set[tuple[int, int]]:
        """The value-space inversion set ``{(a, b) : a < b, a after b}`` of ``p``."""
        inv = p.inverse()
        out = set()
        for a in range(p.size):
            for b in range(a + 1, p.size):
                if inv[a] > inv[b]:
                    out.add((a, b))
        return out

    return value_inversions(sigma) <= value_inversions(tau)


def weak_covers(sigma: Permutation) -> list[Permutation]:
    """Permutations one step up in the right weak order (adjacent swaps only)."""
    out = []
    for i in range(sigma.size - 1):
        if sigma[i] < sigma[i + 1]:
            out.append(sigma.swap_positions(i, i + 1))
    return out


def interval(sigma: Permutation, tau: Permutation) -> list[Permutation]:
    """All permutations ``x`` with ``sigma <=_B x <=_B tau``.

    Enumerated by breadth-first search through covers, filtered by the
    comparison criterion.  Intended for small intervals (the poset-complex
    analyses of the appendix); cost grows with the interval size.
    """
    if not bruhat_leq(sigma, tau):
        return []
    found = {sigma}
    frontier = [sigma]
    while frontier:
        nxt = []
        for x in frontier:
            if x.inversions() >= tau.inversions():
                continue
            for y in covers(x):
                if y not in found and bruhat_leq(y, tau):
                    found.add(y)
                    nxt.append(y)
        frontier = nxt
    return sorted(found, key=lambda p: (p.inversions(), p.one_line))
