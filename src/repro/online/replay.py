"""Streaming replay: static vs. adaptive vs. oracle-per-phase partitioning.

:func:`run_replay` is the top of the online stack.  It feeds a drifting
multi-tenant trace (:class:`repro.trace.drift.DriftingWorkload`)
event-by-event through three partitioned LRU caches at once:

``static``
    The whole-trace optimum: per-tenant *exact* MRCs of the full trace,
    allocated once up front (what the offline :mod:`repro.alloc` pipeline
    would deploy) and never changed.
``adaptive``
    The online engine: per-tenant :class:`~repro.online.windowed.WindowedShardsSketch`
    profiles refreshed every ``epoch`` events, per-tenant
    :class:`~repro.online.phases.PhaseChangeDetector` flags, and a
    :class:`~repro.online.controller.ReallocationController` that re-runs the
    allocator and applies the proposal when the predicted gain beats the
    move-cost penalty.  Resizes take effect immediately: a shrunk partition
    evicts its least-recent blocks and a grown one warms up through ordinary
    misses, so adaptation pays its real warm-up cost in the measured series.
``oracle``
    The upper bound: exact per-phase MRCs allocated at the *true* phase
    boundaries (which only the generator knows).

All three run in the same event loop, so their per-epoch miss-ratio series
are directly comparable.  Every quantity is a pure function of the workload
and the job, so results are bit-identical for every worker count (asserted
in ``tests/online/test_replay.py``); under the ``reference`` engine
``workers`` fans the up-front exact profile extractions (whole-trace and
per-phase) across a process pool, while the default ``batch`` engine derives
them from its own distance pass and never needs the pool.

Two interchangeable *data planes* drive the three simulators (``engine``):

``batch`` (the default)
    The vectorised plane from :mod:`repro.sim.partitioned`: one streaming
    stack-distance pass per tenant per chunk, shared by all three lanes,
    with per-segment occupancy kernels instead of per-event dictionary
    bookkeeping (see ``docs/performance.md``).
``reference``
    The original per-event :class:`PartitionedLRU` loop, kept as the slow
    readable oracle.  Both planes produce bit-identical per-epoch series
    (asserted in the differential suite and enforced with a measured ≥10×
    data-plane speedup in ``benchmarks/test_bench_replay.py``).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..alloc.curves import DiscretizedMRC, discretize_curve
from ..cache.mrc import MissRatioCurve, mrc_from_trace
from ..cache.stack_distance import COLD, stack_distances_with_previous
from ..obs import get_registry, span
from ..profiling.pool import check_workers, pool_map
from ..sim.partitioned import BatchPartitionedLRU, PrecomputedTenantDistances
from ..trace.drift import DriftingWorkload
from .controller import ReallocationController
from .phases import PhaseChangeDetector
from .windowed import WindowedShardsSketch, WindowSnapshot, curve_of_snapshot

__all__ = ["OnlineJob", "EpochStats", "ReplayResult", "PartitionedLRU", "run_replay", "REPLAY_ENGINES"]

#: The selectable replay data planes (see :func:`run_replay`).
REPLAY_ENGINES: tuple[str, ...] = ("batch", "reference")


@dataclass(frozen=True)
class OnlineJob:
    """Configuration of one online re-partitioning run.

    Parameters
    ----------
    budget:
        Shared cache capacity in blocks.
    window:
        Windowed-profiler span in *composed-trace* events; the replay engine
        keeps every tenant's sketch on the shared timeline, so a tenant's
        window covers roughly ``window × its access share`` own references.
    epoch:
        Re-profiling period in composed-trace events; profiles are refreshed
        and the controller consulted at every multiple of ``epoch``.
    method:
        Allocator (``greedy`` | ``dp`` | ``hull``), shared by all three
        systems.
    decay, rate, profile_seed:
        Windowed-sketch knobs (exponential decay rate, spatial sampling rate,
        hash seed); see :class:`~repro.online.windowed.WindowedShardsSketch`.
    move_cost:
        Warm-up misses charged per block that changes hands on a resize.
    horizon_epochs:
        How many epochs an applied re-partition is assumed to stay useful;
        scales the controller's predicted gain against the move cost.
    threshold, hysteresis:
        Phase-change detector knobs; a flagged change consults the
        controller immediately.  The default hysteresis of 1 reacts within
        one epoch — raise it when regimes are long and windows noisy enough
        that single-epoch excursions should not trigger a consult.
    realloc_epochs:
        Fixed re-allocation cadence: without a phase-change flag the
        controller is consulted only every ``realloc_epochs``-th epoch, so
        the detector knobs genuinely gate how fast churn can happen.
    unit:
        Allocation granularity in blocks.
    """

    budget: int
    window: int
    epoch: int
    method: str = "hull"
    decay: float = 0.0
    rate: float = 1.0
    move_cost: float = 1.0
    horizon_epochs: int = 8
    threshold: float = 0.03
    hysteresis: int = 1
    realloc_epochs: int = 4
    unit: int = 1
    profile_seed: int = 0
    name: str = "online"

    def __post_init__(self):
        for field_name in ("budget", "window", "epoch", "horizon_epochs", "realloc_epochs", "unit", "hysteresis"):
            if int(getattr(self, field_name)) < 1:
                raise ValueError(f"{field_name} must be >= 1, got {getattr(self, field_name)}")
        if int(self.unit) > int(self.budget):
            raise ValueError(f"unit ({self.unit}) cannot exceed the budget ({self.budget})")
        # Fail fast on the knobs otherwise only checked deep inside the run,
        # after the (expensive) exact whole-trace profiling already happened.
        if self.method not in ("greedy", "dp", "hull"):
            raise ValueError(f"method must be one of ('greedy', 'dp', 'hull'), got {self.method!r}")
        if not 0.0 < float(self.rate) <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {self.rate}")
        if float(self.decay) < 0.0:
            raise ValueError(f"decay must be >= 0, got {self.decay}")
        if float(self.move_cost) < 0.0:
            raise ValueError(f"move_cost must be >= 0, got {self.move_cost}")
        if float(self.threshold) <= 0.0:
            raise ValueError(f"threshold must be positive, got {self.threshold}")


@dataclass(frozen=True)
class EpochStats:
    """Per-epoch measurement of the three systems.

    ``phase`` is the workload phase containing the epoch's *last* event (an
    epoch that straddles a boundary is attributed to the regime it ends in).
    """

    index: int
    start: int
    end: int
    phase: int
    static_miss_ratio: float
    adaptive_miss_ratio: float
    oracle_miss_ratio: float
    distance: float
    phase_change: bool
    reallocated: bool
    moved_blocks: int
    adaptive_allocation: tuple[int, ...]

    def row(self) -> dict:
        """Flat dictionary for tables and CSV export."""
        return {
            "epoch": self.index,
            "start": self.start,
            "end": self.end,
            "phase": self.phase,
            "static": self.static_miss_ratio,
            "adaptive": self.adaptive_miss_ratio,
            "oracle": self.oracle_miss_ratio,
            "distance": self.distance,
            "phase_change": self.phase_change,
            "reallocated": self.reallocated,
            "moved_blocks": self.moved_blocks,
            "allocation": "/".join(str(c) for c in self.adaptive_allocation),
        }


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of one :func:`run_replay` call."""

    name: str
    accesses: int
    tenants: tuple[str, ...]
    budget: int
    epochs: tuple[EpochStats, ...]
    static_miss_ratio: float
    adaptive_miss_ratio: float
    oracle_miss_ratio: float
    static_allocation: tuple[int, ...]
    final_allocation: tuple[int, ...]
    reallocations: int
    phase_changes: int
    profiled_references: int
    #: The oracle's per-phase splits (applied at the true phase boundaries);
    #: exposed so benchmarks can re-drive the exact lane schedules.
    oracle_allocations: tuple[tuple[int, ...], ...] = ()

    @property
    def win_vs_static(self) -> float:
        """Overall miss-ratio reduction of adaptive over static (positive = win)."""
        return self.static_miss_ratio - self.adaptive_miss_ratio

    @property
    def regret_vs_oracle(self) -> float:
        """Overall miss-ratio gap between adaptive and the per-phase oracle."""
        return self.adaptive_miss_ratio - self.oracle_miss_ratio

    def rows(self) -> list[dict]:
        """Per-epoch rows for tables and CSV export."""
        return [epoch.row() for epoch in self.epochs]

    def summary(self) -> dict:
        """One aggregate row (the adaptation scoreboard)."""
        return {
            "job": self.name,
            "accesses": self.accesses,
            "budget": self.budget,
            "static": self.static_miss_ratio,
            "adaptive": self.adaptive_miss_ratio,
            "oracle": self.oracle_miss_ratio,
            "win_vs_static": self.win_vs_static,
            "regret_vs_oracle": self.regret_vs_oracle,
            "reallocations": self.reallocations,
            "phase_changes": self.phase_changes,
            "profiled_references": self.profiled_references,
        }


class PartitionedLRU:
    """Per-tenant LRU partitions of one shared cache, resizable online.

    Each tenant owns an isolated LRU partition of ``capacities[t]`` blocks.
    :meth:`resize` applies a new split immediately: a shrunk partition evicts
    from its least-recently-used end (so the move's warm-up cost surfaces as
    ordinary misses on the next accesses), a grown one simply gains headroom.
    A capacity of 0 bypasses the cache entirely (every access misses).

    This per-event simulator is the *slow-path reference*: the replay engine
    drives its lanes through the batch kernels of
    :class:`repro.sim.partitioned.BatchPartitionedLRU` by default, and the
    differential suite holds the two bit-identical on every schedule of
    accesses and resizes.
    """

    def __init__(self, capacities: Sequence[int]):
        self._capacities = [int(c) for c in capacities]
        if any(c < 0 for c in self._capacities):
            raise ValueError("partition capacities must be >= 0")
        self._entries: list[OrderedDict[int, None]] = [OrderedDict() for _ in self._capacities]
        self.hits = 0
        self.misses = 0

    @property
    def capacities(self) -> tuple[int, ...]:
        """Current per-tenant partition sizes in blocks."""
        return tuple(self._capacities)

    @property
    def occupancies(self) -> tuple[int, ...]:
        """Resident blocks per tenant (what a shrink eviction truncates)."""
        return tuple(len(entries) for entries in self._entries)

    def access(self, tenant: int, item: int) -> bool:
        """Access ``item`` in tenant ``tenant``'s partition; ``True`` on a hit."""
        capacity = self._capacities[tenant]
        entries = self._entries[tenant]
        if item in entries:
            entries.move_to_end(item)
            self.hits += 1
            return True
        self.misses += 1
        if capacity == 0:
            return False
        if len(entries) >= capacity:
            entries.popitem(last=False)
        entries[item] = None
        return False

    def resize(self, capacities: Sequence[int]) -> None:
        """Apply a new split; shrunk partitions evict their LRU blocks now."""
        capacities = [int(c) for c in capacities]
        if len(capacities) != len(self._capacities):
            raise ValueError(f"got {len(capacities)} capacities for {len(self._capacities)} partitions")
        if any(c < 0 for c in capacities):
            raise ValueError("partition capacities must be >= 0")
        for entries, capacity in zip(self._entries, capacities):
            while len(entries) > capacity:
                entries.popitem(last=False)
        self._capacities = capacities

    @property
    def miss_ratio(self) -> float:
        """Miss ratio over everything accessed so far (0 when nothing was)."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


_IDLE_CURVE_ACCESSES = 1


def _idle_curve(unit: int) -> DiscretizedMRC:
    """Zero-demand curve for a tenant with no (sampled) traffic: never allocate."""
    return DiscretizedMRC(misses=np.zeros(1, dtype=np.float64), unit=unit, accesses=_IDLE_CURVE_ACCESSES)


def _exact_discretized(task: tuple[np.ndarray, int, int]) -> DiscretizedMRC:
    """Pool worker: exact whole-stream MRC, discretized to allocation units."""
    stream, budget, unit = task
    if stream.size == 0:
        return _idle_curve(unit)
    curve = mrc_from_trace(stream, max_cache_size=budget)
    return discretize_curve(curve, budget, unit=unit)


def _discretized_from_distances(distances: np.ndarray, budget: int, unit: int) -> DiscretizedMRC:
    """Exact discretized MRC straight from precomputed stack distances.

    Bit-identical to ``_exact_discretized`` on the stream the distances were
    measured over (same histogram, same cumulative hits, same float ops) —
    but free once the replay data plane has done its one distance pass per
    tenant.  Cold accesses carry the :data:`~repro.cache.stack_distance.COLD`
    sentinel, which is beyond any budget and falls out of the histogram.
    """
    n = int(distances.size)
    if n == 0:
        return _idle_curve(unit)
    within = distances[distances <= budget]
    hist = np.bincount(within - 1, minlength=budget)[:budget]
    ratios = 1.0 - np.cumsum(hist).astype(np.float64) / n
    curve = MissRatioCurve(ratios=tuple(ratios.tolist()), accesses=n)
    return discretize_curve(curve, budget, unit=unit)


def _windowed_profile(task: tuple[WindowSnapshot, int, int]):
    """Pool worker: windowed-sketch curve (for the detector) plus its discretization.

    Returns ``(curve, discretized)``; ``curve`` is ``None`` for a tenant whose
    sampled window is empty (no traffic), which maps to the idle zero-demand
    discretization so the allocator starves it.
    """
    snapshot, budget, unit = task
    if snapshot.sampled == 0:
        return None, _idle_curve(unit)
    curve = curve_of_snapshot(snapshot, max_cache_size=budget)
    return curve, discretize_curve(curve, budget, unit=unit)


def _initial_split(num_tenants: int, budget: int, unit: int) -> tuple[int, ...]:
    """Deterministic cold-start split: equal units, remainder to low indices."""
    units = budget // unit
    base, extra = divmod(units, num_tenants)
    return tuple((base + (1 if t < extra else 0)) * unit for t in range(num_tenants))


class _LaneSet:
    """The static/adaptive/oracle lane simulators behind one data plane.

    ``batch`` shares one streaming stack-distance pass per tenant per chunk
    across all three :class:`~repro.sim.partitioned.BatchPartitionedLRU`
    lanes; ``reference`` steps three per-event :class:`PartitionedLRU`
    simulators.  Both expose the same advance/resize surface so the replay
    control loop above them is engine-agnostic.
    """

    def __init__(
        self,
        engine: str,
        distance_arrays: Sequence[np.ndarray] | None,
        allocations: dict[str, Sequence[int]],
    ):
        if engine not in REPLAY_ENGINES:
            raise ValueError(f"engine must be one of {REPLAY_ENGINES}, got {engine!r}")
        if engine == "reference":
            self._distances = None
            self._sims = {name: PartitionedLRU(capacities) for name, capacities in allocations.items()}
        else:
            # The per-tenant distance pass already ran (it produced the static
            # and oracle profiles); chunks slice the same arrays for free.
            self._distances = PrecomputedTenantDistances.from_arrays(distance_arrays)
            self._sims = {name: BatchPartitionedLRU(capacities) for name, capacities in allocations.items()}

    def advance(self, chunk_items: np.ndarray, chunk_ids: np.ndarray, counters: dict[str, list[int]]) -> None:
        """Feed one chunk to every lane, folding hit/miss deltas into ``counters``."""
        if self._distances is None:
            # The per-event loop is the reference plane's hot path; plain
            # Python ints (one tolist() per chunk) hash and compare much
            # faster in the OrderedDict partitions than per-event numpy
            # scalar unboxing.
            event_pairs = list(zip(chunk_ids.tolist(), chunk_items.tolist()))
            for key, sim in self._sims.items():
                hits_before, misses_before = sim.hits, sim.misses
                access = sim.access
                for tenant, item in event_pairs:
                    access(tenant, item)
                counters[key][0] += sim.hits - hits_before
                counters[key][1] += sim.misses - misses_before
        else:
            # One distance pass per tenant serves all three capacity
            # schedules: distances are a property of the tenant stream alone.
            distances = self._distances.feed(chunk_items, chunk_ids)
            for key, sim in self._sims.items():
                hits, misses = sim.run_segment(distances)
                counters[key][0] += hits
                counters[key][1] += misses

    def resize(self, lane: str, capacities: Sequence[int]) -> None:
        """Apply a new split to one lane (shrink evictions included)."""
        self._sims[lane].resize(capacities)

    def capacities(self, lane: str) -> tuple[int, ...]:
        """Current per-tenant split of one lane."""
        return self._sims[lane].capacities

    def miss_ratio(self, lane: str) -> float:
        """Overall miss ratio of one lane so far."""
        return self._sims[lane].miss_ratio


def run_replay(
    workload: DriftingWorkload, job: OnlineJob, *, workers: int = 1, engine: str = "batch"
) -> ReplayResult:
    """Replay a drifting workload under static, adaptive and oracle partitioning.

    ``engine`` selects the data plane driving the three simulators:
    ``"batch"`` (vectorised kernels, the default) or ``"reference"`` (the
    per-event ``OrderedDict`` loop).  The result is bit-identical either way.
    """
    workers = check_workers(workers)
    if engine not in REPLAY_ENGINES:
        # Fail before the expensive up-front profiling, like OnlineJob does.
        raise ValueError(f"engine must be one of {REPLAY_ENGINES}, got {engine!r}")
    composed = workload.composed
    items = composed.trace.accesses
    ids = composed.tenant_ids
    n = int(items.size)
    num_tenants = composed.num_tenants
    budget, unit = int(job.budget), int(job.unit)

    controller = ReallocationController(budget=budget, method=job.method, unit=unit, move_cost=job.move_cost)

    # Whole-trace (static) and per-phase (oracle) exact profiles — both are
    # method-independent inputs computed up front.
    with span("online.profiles", engine=engine):
        if engine == "reference":
            # The seed path: every profile re-processes its stream from scratch,
            # fanned over the pool.
            static_tasks = [(composed.tenant_trace(t), budget, unit) for t in range(num_tenants)]
            phase_tasks = [
                (workload.tenant_phase_trace(t, p), budget, unit)
                for p in range(workload.num_phases)
                for t in range(num_tenants)
            ]
            static_curves = pool_map(_exact_discretized, static_tasks, workers=workers)
            phase_curves = pool_map(_exact_discretized, phase_tasks, workers=workers)
            distance_arrays = None
        else:
            # The batch data plane: ONE distance pass per tenant yields the static
            # profiles (histogram of the whole array), the per-phase oracle
            # profiles (an access whose previous access predates the phase is
            # simply cold there — no re-processing), and then drives every lane.
            tenant_positions = [np.flatnonzero(ids == t) for t in range(num_tenants)]
            passes = [stack_distances_with_previous(items[idx]) for idx in tenant_positions]
            distance_arrays = [distances for distances, _previous in passes]
            static_curves = [_discretized_from_distances(distances, budget, unit) for distances in distance_arrays]
            phase_curves = []
            for p in range(workload.num_phases):
                bounds = workload.phase_slice(p)
                for t in range(num_tenants):
                    lo, hi = (int(x) for x in np.searchsorted(tenant_positions[t], bounds))
                    distances, previous = passes[t]
                    adjusted = np.where(previous[lo:hi] >= lo, distances[lo:hi], np.int64(COLD))
                    phase_curves.append(_discretized_from_distances(adjusted, budget, unit))
    static_allocation = controller.propose(static_curves)
    oracle_allocations = []
    for p in range(workload.num_phases):
        oracle_allocations.append(controller.propose(phase_curves[p * num_tenants : (p + 1) * num_tenants]))

    lanes = _LaneSet(
        engine,
        distance_arrays,
        {
            "static": static_allocation,
            "adaptive": _initial_split(num_tenants, budget, unit),
            "oracle": oracle_allocations[0],
        },
    )
    sketches = [
        WindowedShardsSketch(window=job.window, decay=job.decay, rate=job.rate, seed=job.profile_seed)
        for _ in range(num_tenants)
    ]
    detectors = []
    for _ in range(num_tenants):
        detectors.append(PhaseChangeDetector(threshold=job.threshold, hysteresis=job.hysteresis))

    # Stops are every epoch end plus every phase boundary (oracle resizes
    # there); chunks between stops are processed with batched sketch updates.
    epoch_ends = set(range(job.epoch, n, job.epoch)) | {n}
    stops = sorted(epoch_ends | {b for b in workload.boundaries if b > 0})

    epochs: list[EpochStats] = []
    profiled_references = 0
    reallocations = 0
    phase_changes = 0
    epoch_index = 0
    epoch_start = 0
    counters = {"static": [0, 0], "adaptive": [0, 0], "oracle": [0, 0]}  # [hits, misses] this epoch

    def run_chunk(start: int, end: int) -> None:
        """Feed events ``start .. end`` to all three simulators and the sketches."""
        chunk_items = items[start:end]
        chunk_ids = ids[start:end]
        lanes.advance(chunk_items, chunk_ids, counters)
        for t in range(num_tenants):
            tenant_items = chunk_items[chunk_ids == t]
            sketches[t].update(tenant_items)
            # Keep every sketch on the composed timeline: advancing past the
            # other tenants' events makes windows age in shared time, so a
            # tenant that goes quiet drains out of its own window.
            sketches[t].advance(int(chunk_items.size - tenant_items.size))

    position = 0
    phase = 0
    settling = False
    with span("online.replay", engine=engine):
        for stop in stops:
            run_chunk(position, stop)
            position = stop
            if phase + 1 < workload.num_phases and position >= workload.boundaries[phase + 1]:
                phase += 1
                lanes.resize("oracle", oracle_allocations[phase])
            if position not in epoch_ends:
                continue

            # Epoch end: refresh windowed profiles, consult detector + controller.
            # The per-epoch extractions are tiny (the sampled window buffers), so
            # they run inline — forking a pool every epoch would cost more than
            # the two stack-distance passes it parallelises; `workers` fans only
            # the heavy up-front exact profiling above.
            snapshots = [sketch.snapshot() for sketch in sketches]
            profiled_references += sum(snap.sampled for snap in snapshots)
            profiles = [_windowed_profile((snap, budget, unit)) for snap in snapshots]
            window_curves = [discretized for _curve, discretized in profiles]
            distance = 0.0
            changed = False
            for t, (curve, _discretized) in enumerate(profiles):
                if curve is None:
                    continue
                observation = detectors[t].observe(curve)
                distance = max(distance, observation.distance)
                changed = changed or observation.changed
            if changed:
                phase_changes += 1
            # The controller is consulted on a phase-change flag, on the fixed
            # re-allocation cadence, or while *settling* — refining after a flag
            # or an applied move, when the window is still absorbing the new
            # regime.  Quiet unflagged epochs between cadence points never
            # re-partition, so threshold/hysteresis genuinely gate churn.
            applied = False
            moved_blocks = 0
            predicted_gain = 0.0
            move_penalty = 0.0
            if changed or settling or epoch_index % job.realloc_epochs == 0:
                decision = controller.decide(
                    window_curves,
                    lanes.capacities("adaptive"),
                    horizon=job.epoch * job.horizon_epochs,
                )
                predicted_gain = decision.predicted_gain
                move_penalty = decision.penalty
                if decision.applied:
                    lanes.resize("adaptive", decision.allocation)
                    reallocations += 1
                    applied = True
                    moved_blocks = decision.moved_blocks
                settling = applied or changed

            total = position - epoch_start
            # Label the epoch with the phase of its *last event*: when an epoch
            # ends exactly on a boundary, `phase` has already advanced to the
            # next regime even though every recorded event belongs to the old one.
            last_event_phase = int(np.searchsorted(workload.boundaries, position - 1, side="right")) - 1
            epochs.append(
                EpochStats(
                    index=epoch_index,
                    start=epoch_start,
                    end=position,
                    phase=last_event_phase,
                    static_miss_ratio=counters["static"][1] / total,
                    adaptive_miss_ratio=counters["adaptive"][1] / total,
                    oracle_miss_ratio=counters["oracle"][1] / total,
                    distance=distance,
                    phase_change=changed,
                    reallocated=applied,
                    moved_blocks=moved_blocks,
                    adaptive_allocation=lanes.capacities("adaptive"),
                )
            )
            registry = get_registry()
            if registry.enabled:
                # The per-epoch time series mirrors EpochStats.row() plus the
                # controller's pricing of the epoch's decision and the sketch
                # sample volume — purely observational, never read back.
                registry.series("online.epochs").record(
                    epoch=epoch_index,
                    start=epoch_start,
                    end=position,
                    phase=last_event_phase,
                    static=counters["static"][1] / total,
                    adaptive=counters["adaptive"][1] / total,
                    oracle=counters["oracle"][1] / total,
                    distance=distance,
                    phase_change=changed,
                    reallocated=applied,
                    moved_blocks=moved_blocks,
                    allocation="/".join(str(c) for c in lanes.capacities("adaptive")),
                    sketch_sampled=sum(snap.sampled for snap in snapshots),
                    gain=predicted_gain,
                    penalty=move_penalty,
                )
                if changed:
                    registry.counter("online.phase_changes").inc()
                if applied:
                    registry.counter("online.reallocations").inc()
                    registry.counter("online.moved_blocks").add(moved_blocks)

            epoch_index += 1
            epoch_start = position
            for key in counters:
                counters[key] = [0, 0]

    registry = get_registry()
    registry.counter("online.events", engine=engine).add(n)
    registry.counter("online.profiled_references").add(profiled_references)
    registry.gauge("online.tenants").set(num_tenants)
    return ReplayResult(
        name=job.name,
        accesses=n,
        tenants=composed.names,
        budget=budget,
        epochs=tuple(epochs),
        static_miss_ratio=lanes.miss_ratio("static"),
        adaptive_miss_ratio=lanes.miss_ratio("adaptive"),
        oracle_miss_ratio=lanes.miss_ratio("oracle"),
        static_allocation=tuple(static_allocation),
        final_allocation=lanes.capacities("adaptive"),
        reallocations=reallocations,
        phase_changes=phase_changes,
        profiled_references=profiled_references,
        oracle_allocations=tuple(tuple(a) for a in oracle_allocations),
    )
