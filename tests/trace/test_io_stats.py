"""Unit tests for trace I/O and trace statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace import (
    PeriodicTrace,
    Trace,
    locality_score,
    read_npz,
    read_text,
    summarize,
    write_npz,
    write_text,
    zipfian_trace,
)


class TestTextIO:
    def test_round_trip(self, tmp_path, rng):
        trace = zipfian_trace(100, 20, rng=rng)
        path = write_text(trace, tmp_path / "trace.txt")
        loaded = read_text(path)
        assert loaded == trace
        assert loaded.name == trace.name

    def test_round_trip_without_header(self, tmp_path):
        trace = Trace([5, 3, 5], name="tiny")
        path = write_text(trace, tmp_path / "bare.txt", header=False)
        loaded = read_text(path)
        assert loaded == trace
        assert loaded.name == "bare"

    def test_reads_files_with_blank_lines_and_comments(self, tmp_path):
        path = tmp_path / "manual.txt"
        path.write_text("# comment\n\n3\n1\n\n2\n")
        trace = read_text(path, name="manual")
        assert trace.accesses.tolist() == [3, 1, 2]
        assert trace.name == "manual"


class TestNpzIO:
    def test_round_trip_with_metadata(self, tmp_path, rng):
        trace = zipfian_trace(64, 16, rng=rng)
        write_npz(trace, tmp_path / "trace.npz", metadata={"source": "unit-test"})
        loaded, meta = read_npz(tmp_path / "trace.npz")
        assert loaded == trace
        assert meta["source"] == "unit-test"
        assert meta["footprint"] == trace.footprint

    def test_round_trip_without_metadata(self, tmp_path):
        trace = Trace([0, 1, 2, 1, 0])
        write_npz(trace, tmp_path / "plain.npz")
        loaded, meta = read_npz(tmp_path / "plain.npz")
        assert loaded == trace
        assert meta["name"] == trace.name


class TestStats:
    def test_summary_of_sawtooth(self):
        stats = summarize(PeriodicTrace.sawtooth(8).to_trace())
        assert stats.accesses == 16
        assert stats.footprint == 8
        assert stats.cold_accesses == 8
        assert stats.mean_stack_distance == pytest.approx((8 + 1) / 2)
        assert stats.max_stack_distance == 8
        assert stats.reuse_fraction() == pytest.approx(0.5)

    def test_summary_of_cyclic(self):
        stats = summarize(PeriodicTrace.cyclic(8).to_trace())
        assert stats.mean_stack_distance == pytest.approx(8.0)

    def test_summary_empty_raises(self):
        with pytest.raises(ValueError):
            summarize(Trace([]))

    def test_summary_no_reuse(self):
        stats = summarize(Trace(range(10)))
        assert stats.cold_accesses == 10
        assert np.isnan(stats.mean_stack_distance)
        assert stats.reuse_fraction() == 0.0

    def test_locality_score_extremes(self):
        assert locality_score(PeriodicTrace.cyclic(32).to_trace()) == pytest.approx(0.0)
        assert locality_score(PeriodicTrace.sawtooth(32).to_trace()) == pytest.approx(1.0)

    def test_locality_score_monotone_in_inversions(self, rng):
        from repro.trace import fixed_inversion_retraversal

        low = fixed_inversion_retraversal(32, 50, rng)
        high = fixed_inversion_retraversal(32, 400, rng)
        assert locality_score(low.to_trace()) < locality_score(high.to_trace())

    def test_locality_score_no_reuse_trace(self):
        assert locality_score(Trace(range(20))) == 0.0

    def test_locality_score_single_item(self):
        assert locality_score(Trace([0, 0, 0])) in (0.0, 1.0)
