"""Exporters: registry → JSONL (canonical), CSV, and Prometheus text format.

JSONL is the canonical on-disk form — one record per line, a ``type`` field
on each (``manifest`` first when provided, then ``counter`` / ``gauge`` /
``histogram`` / ``span`` / ``series``) — and what ``repro metrics``
summarizes.  CSV flattens the same records for spreadsheet triage, and the
Prometheus text format serves scrape-style consumers (cumulative ``le``
buckets, ``_sum`` / ``_count`` conventions).  All writers create missing
parent directories.
"""

from __future__ import annotations

import json
from pathlib import Path

from .manifest import RunManifest
from .registry import MetricsRegistry

__all__ = [
    "write_jsonl",
    "write_metrics_csv",
    "prometheus_text",
    "write_prometheus",
    "read_jsonl",
    "summarize_records",
]


def _prepare(path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    return path


def write_jsonl(path: str | Path, registry: MetricsRegistry, manifest: RunManifest | None = None) -> Path:
    """Write the registry (manifest line first) as JSON Lines; returns the path."""
    path = _prepare(path)
    lines = []
    if manifest is not None:
        lines.append(json.dumps(manifest.to_record(), sort_keys=True))
    for record in registry.records():
        lines.append(json.dumps(record, sort_keys=True))
    path.write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")
    return path


def read_jsonl(path: str | Path) -> list[dict[str, object]]:
    """Read back a metrics JSONL file as a list of records."""
    records = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def write_metrics_csv(path: str | Path, registry: MetricsRegistry) -> Path:
    """Write a flat ``type,name,labels,field,value`` CSV of the registry."""
    import csv

    path = _prepare(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["type", "name", "labels", "field", "value"])
        for record in registry.records():
            kind = record["type"]
            name = record["name"]
            labels = json.dumps(record.get("labels", {}), sort_keys=True)
            if kind == "series":
                for field, value in record["row"].items():  # type: ignore[union-attr]
                    writer.writerow([kind, name, json.dumps({"index": record["index"]}), field, value])
            else:
                for field in ("value", "count", "total", "min", "max", "edges", "counts"):
                    if field in record:
                        value = record[field]
                        if isinstance(value, list):
                            value = json.dumps(value)
                        writer.writerow([kind, name, labels, field, value])
    return path


def _prom_name(name: str) -> str:
    out = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    return out if not out[:1].isdigit() else "_" + out


def _prom_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(f'{_prom_name(k)}="{v}"' for k, v in sorted(merged.items()))
    return "{" + body + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format.

    Histograms follow the convention: cumulative ``le``-labelled buckets, a
    ``+Inf`` bucket, and ``_sum`` / ``_count`` samples.  Series are omitted
    (they are not point-in-time samples).
    """
    lines: list[str] = []
    typed: set[str] = set()

    def header(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for record in registry.records():
        kind = record["type"]
        name = _prom_name(str(record["name"]))
        labels = record.get("labels", {})
        assert isinstance(labels, dict)
        if kind == "counter":
            header(name + "_total", "counter")
            lines.append(f"{name}_total{_prom_labels(labels)} {record['value']}")
        elif kind == "gauge":
            if record["value"] is not None:
                header(name, "gauge")
                lines.append(f"{name}{_prom_labels(labels)} {record['value']}")
        elif kind == "histogram":
            header(name, "histogram")
            cumulative = 0
            for edge, count in zip(record["edges"], record["counts"]):  # type: ignore[arg-type]
                cumulative += count
                lines.append(f"{name}_bucket{_prom_labels(labels, {'le': repr(float(edge))})} {cumulative}")
            lines.append(f"{name}_bucket{_prom_labels(labels, {'le': '+Inf'})} {record['count']}")
            lines.append(f"{name}_sum{_prom_labels(labels)} {record['total']}")
            lines.append(f"{name}_count{_prom_labels(labels)} {record['count']}")
        elif kind == "span":
            header(name + "_seconds", "summary")
            lines.append(f"{name}_seconds_sum{_prom_labels(labels)} {record['total']}")
            lines.append(f"{name}_seconds_count{_prom_labels(labels)} {record['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(path: str | Path, registry: MetricsRegistry) -> Path:
    """Write :func:`prometheus_text` to ``path``; returns the path."""
    path = _prepare(path)
    path.write_text(prometheus_text(registry), encoding="utf-8")
    return path


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def summarize_records(records: list[dict[str, object]]) -> str:
    """A human-readable scoreboard of a metrics record list (JSONL contents).

    This is the body of the ``repro metrics`` subcommand: the manifest first,
    then counters, gauges, span timings (with mean), histograms, and a
    per-series row count.
    """
    lines: list[str] = []
    manifests = [r for r in records if r.get("type") == "manifest"]
    for manifest in manifests:
        argv = " ".join(str(a) for a in manifest.get("argv", []))
        lines.append(f"run: {manifest.get('command')} {argv}".rstrip())
        context = [
            f"git={manifest.get('git') or 'n/a'}",
            f"python={manifest.get('python')}",
            f"numpy={manifest.get('numpy')}",
            f"time={manifest.get('timestamp')}",
        ]
        if manifest.get("seed") is not None:
            context.insert(0, f"seed={manifest['seed']}")
        lines.append("  " + " ".join(context))

    def label_suffix(record: dict[str, object]) -> str:
        labels = record.get("labels") or {}
        assert isinstance(labels, dict)
        return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}" if labels else ""

    by_kind: dict[str, list[dict[str, object]]] = {}
    for record in records:
        by_kind.setdefault(str(record.get("type")), []).append(record)

    counters = sorted(by_kind.get("counter", []), key=lambda r: (str(r["name"]), label_suffix(r)))
    if counters:
        lines.append("counters:")
        for record in counters:
            lines.append(f"  {record['name']}{label_suffix(record)} = {_fmt(record['value'])}")
    gauges = sorted(by_kind.get("gauge", []), key=lambda r: (str(r["name"]), label_suffix(r)))
    if gauges:
        lines.append("gauges:")
        for record in gauges:
            lines.append(f"  {record['name']}{label_suffix(record)} = {_fmt(record['value'])}")
    spans = sorted(by_kind.get("span", []), key=lambda r: (str(r["name"]), label_suffix(r)))
    if spans:
        lines.append("spans:")
        for record in spans:
            count = int(record["count"])  # type: ignore[arg-type]
            total = float(record["total"])  # type: ignore[arg-type]
            mean = total / count if count else 0.0
            lines.append(
                f"  {record['name']}{label_suffix(record)}: count={count} total={_fmt(total)}s "
                f"mean={_fmt(mean)}s min={_fmt(record['min'])}s max={_fmt(record['max'])}s"
            )
    histograms = sorted(by_kind.get("histogram", []), key=lambda r: (str(r["name"]), label_suffix(r)))
    if histograms:
        lines.append("histograms:")
        for record in histograms:
            count = int(record["count"])  # type: ignore[arg-type]
            mean = float(record["total"]) / count if count else 0.0  # type: ignore[arg-type]
            lines.append(f"  {record['name']}{label_suffix(record)}: count={count} mean={_fmt(mean)}")
    series_counts: dict[str, int] = {}
    for record in by_kind.get("series", []):
        series_counts[str(record["name"])] = series_counts.get(str(record["name"]), 0) + 1
    if series_counts:
        lines.append("series:")
        for name in sorted(series_counts):
            lines.append(f"  {name}: {series_counts[name]} rows")
    if not lines:
        lines.append("(no records)")
    return "\n".join(lines)
