"""The SweepJob/SweepResult API and the parallel fan-out of the sweep engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import POLICIES, SweepJob, SweepResult, run_sweep
from repro.trace.generators import zipfian_trace
from repro.trace.io import write_text
from repro.trace.trace import Trace


@pytest.fixture(scope="module")
def zipf_trace():
    return zipfian_trace(2500, 80, exponent=0.9, rng=13).accesses


ALL_POLICIES_JOB = dict(
    policies=POLICIES,
    capacities=(1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 80),
    ways=4,
    seed=21,
)


class TestSweepJob:
    def test_requires_exactly_one_source(self):
        with pytest.raises(ValueError):
            SweepJob(capacities=(1,))
        with pytest.raises(ValueError):
            SweepJob(trace=np.array([1, 2]), path="x.trace", capacities=(1,))

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            SweepJob(trace=np.array([1, 2]), policies=("mru",), capacities=(1,))

    def test_rejects_empty_or_bad_capacities(self):
        with pytest.raises(ValueError):
            SweepJob(trace=np.array([1, 2]), capacities=())
        with pytest.raises(ValueError):
            SweepJob(trace=np.array([1, 2]), capacities=(0,))

    def test_normalises_capacity_grid(self):
        job = SweepJob(trace=np.array([1, 2]), capacities=(8, 2, 8, 4))
        assert job.capacities == (2, 4, 8)

    def test_set_associative_grid_filters_non_multiples(self):
        job = SweepJob(trace=np.array([1, 2]), capacities=(2, 4, 6, 8), ways=4)
        assert job.capacities_for("set-associative") == (4, 8)
        assert job.capacities_for("lru") == (2, 4, 6, 8)

    def test_set_associative_with_no_realisable_capacity_is_an_error(self):
        with pytest.raises(ValueError, match="multiple of ways"):
            SweepJob(trace=np.array([1, 2]), policies=("set-associative",), capacities=(1, 2, 3), ways=4)


class TestRunSweep:
    def test_full_matrix_shape(self, zipf_trace):
        job = SweepJob(trace=zipf_trace, name="zipf", **ALL_POLICIES_JOB)
        result = run_sweep(job)
        assert isinstance(result, SweepResult)
        assert result.accesses == zipf_trace.size
        assert {s.policy for s in result.sweeps} == set(POLICIES)
        grid = ALL_POLICIES_JOB["capacities"]
        assert result["lru"].capacities == grid
        assert result["fifo"].capacities == grid
        sa = result["set-associative"]
        assert sa.capacities == tuple(c for c in grid if c % 4 == 0)
        for sweep in result.sweeps:
            assert all(0 <= h <= result.accesses for h in sweep.hits)
            assert all(0.0 <= r <= 1.0 for r in sweep.miss_ratios)

    @pytest.mark.parametrize("workers", [2, 3])
    def test_workers_never_change_results(self, zipf_trace, workers):
        """The whole matrix — including the seeded random policy — is
        bit-identical across worker counts."""
        job = SweepJob(trace=zipf_trace, **ALL_POLICIES_JOB)
        serial = run_sweep(job, workers=1)
        pooled = run_sweep(job, workers=workers)
        for a, b in zip(serial.sweeps, pooled.sweeps):
            assert a.policy == b.policy
            assert a.capacities == b.capacities
            assert a.hits == b.hits

    def test_lru_hits_monotone_and_saturating(self, zipf_trace):
        job = SweepJob(trace=zipf_trace, policies=("lru",), capacities=tuple(range(1, 81)))
        sweep = run_sweep(job)["lru"]
        hits = np.asarray(sweep.hits)
        assert np.all(np.diff(hits) >= 0)
        distinct = np.unique(zipf_trace).size
        assert hits[-1] == zipf_trace.size - distinct

    def test_rows_and_lookup(self, zipf_trace):
        job = SweepJob(trace=zipf_trace, name="z", policies=("lru", "fifo"), capacities=(4, 8))
        result = run_sweep(job)
        rows = result.rows()
        assert len(rows) == 4
        assert {row["policy"] for row in rows} == {"lru", "fifo"}
        first = rows[0]
        assert first["hits"] + first["misses"] == first["accesses"]
        assert result["lru"].miss_ratio_at(8) == pytest.approx(
            next(r["miss_ratio"] for r in rows if r["policy"] == "lru" and r["capacity"] == 8)
        )
        with pytest.raises(KeyError):
            result["lru"].miss_ratio_at(5)
        with pytest.raises(KeyError):
            result["random"]

    def test_loads_trace_from_file(self, zipf_trace, tmp_path):
        path = tmp_path / "z.trace"
        write_text(Trace(zipf_trace, name="z"), path)
        from_file = run_sweep(SweepJob(path=str(path), policies=("lru",), capacities=(4, 16)))
        in_memory = run_sweep(SweepJob(trace=zipf_trace, policies=("lru",), capacities=(4, 16)))
        assert from_file["lru"].hits == in_memory["lru"].hits

    def test_rejects_bad_workers(self, zipf_trace):
        job = SweepJob(trace=zipf_trace, policies=("lru",), capacities=(4,))
        with pytest.raises(ValueError):
            run_sweep(job, workers=0)

    def test_set_associative_respects_original_labels(self):
        """Sparse labels must not be compacted before the modulo set mapping.

        With labels {0, 2} and a direct-mapped cache of 2 sets, both items
        collide in set 0 (everything misses); compacting to {0, 1} would
        wrongly spread them across both sets.
        """
        from repro.cache.set_associative import SetAssociativeCache

        trace = np.array([0, 2] * 100)
        job = SweepJob(trace=trace, policies=("set-associative",), capacities=(2,), ways=1)
        result = run_sweep(job)
        model = SetAssociativeCache(2, 1)
        assert result["set-associative"].hits == (model.run(trace.tolist()).hits,)
        assert result["set-associative"].hits == (0,)

    def test_set_associative_original_labels_across_workers(self):
        from repro.cache.set_associative import SetAssociativeCache

        rng = np.random.default_rng(4)
        trace = rng.integers(0, 500, 1200) * 3 + 1  # sparse, non-dense labels
        job = SweepJob(trace=trace, policies=("set-associative",), capacities=(4, 8, 16), ways=4)
        for workers in (1, 3):
            result = run_sweep(job, workers=workers)
            for capacity, hits in zip(result["set-associative"].capacities, result["set-associative"].hits):
                model = SetAssociativeCache(int(capacity) // 4, 4)
                assert hits == model.run(trace.tolist()).hits
