"""Reuse-interval and LRU stack-distance algorithms for arbitrary traces.

The closed-form results of :mod:`repro.core.hits` apply to periodic traces
``A σ(A)``; general program traces reuse data arbitrarily often (the
limitation discussed in Section VI-D/E).  This module provides the classic
trace-processing algorithms so that arbitrary traces can be analysed and the
periodic special case can be cross-validated:

* :func:`reuse_intervals` — the time (access count) between consecutive uses
  of the same item (Definition 4).
* :func:`stack_distances_naive` — Mattson's original stack simulation,
  ``O(N·M)``; the readable oracle.
* :func:`stack_distances` — the Olken/Bennett–Kruskal algorithm: a Fenwick
  tree over access times marks the *last* access of every item, so the number
  of distinct items touched since the previous access of the current item is a
  suffix sum — ``O(N log N)`` overall.
* :func:`stack_distances_vectorized` — the same exact distances without a
  per-access Python loop: each reuse pair becomes an *arc* ``(j, next(j))``,
  the distance is ``next(j) - j`` minus the number of arcs strictly nested
  inside, and nested-arc counting is "count smaller elements to the right"
  of the arc-end sequence — computed by a level-by-level vectorised merge
  sort (``O(N log^2 N)`` NumPy work, no Python-level per-access steps).  This
  is the fast path behind :func:`stack_distance_histogram` and the
  single-pass LRU capacity sweep in :mod:`repro.sim`.
* :func:`stack_distance_histogram` and :func:`hit_counts` — aggregate forms
  used by the miss-ratio-curve construction in :mod:`repro.cache.mrc`.

Distances use the same convention as the rest of the library: the *stack
distance* of an access is ``1 +`` the number of distinct items referenced since
the previous access to the same item; first-ever accesses (cold misses) have
no finite distance and are reported as ``0`` sentinel in the histogram's
overflow slot or ``numpy.iinfo(np.int64).max`` in per-access arrays.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.inversions import FenwickTree

__all__ = [
    "COLD",
    "reuse_intervals",
    "stack_distances_naive",
    "stack_distances",
    "stack_distances_vectorized",
    "stack_distance_histogram",
    "hit_counts",
]

#: Sentinel distance assigned to cold (first-ever) accesses.
COLD: int = int(np.iinfo(np.int64).max)


def _as_trace(trace: Sequence[int] | np.ndarray) -> np.ndarray:
    arr = np.asarray(trace)
    if arr.ndim != 1:
        raise ValueError(f"trace must be one-dimensional, got shape {arr.shape}")
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(f"trace items must be integers, got dtype {arr.dtype}")
    return arr.astype(np.int64, copy=False)


def reuse_intervals(trace: Sequence[int] | np.ndarray) -> np.ndarray:
    """Reuse interval of each access: accesses since the previous use of the same item.

    The first access of an item has no previous use and is reported as
    :data:`COLD`.  (The paper's Definition 4 assigns the interval to the
    *earlier* access of the pair; assigning it to the later access, as done
    here, is the standard trace-processing convention and carries the same
    multiset of finite values.)
    """
    arr = _as_trace(trace)
    out = np.full(arr.size, COLD, dtype=np.int64)
    last_seen: dict[int, int] = {}
    for pos in range(arr.size):
        item = int(arr[pos])
        if item in last_seen:
            out[pos] = pos - last_seen[item] - 1
        last_seen[item] = pos
    return out


def stack_distances_naive(trace: Sequence[int] | np.ndarray) -> np.ndarray:
    """LRU stack distances by direct stack simulation (``O(N·M)`` oracle).

    Maintains the explicit LRU stack; the distance of an access is the depth
    (1-based) of the item in the stack, or :data:`COLD` if absent.
    """
    arr = _as_trace(trace)
    stack: list[int] = []  # most recently used at the end
    out = np.full(arr.size, COLD, dtype=np.int64)
    for pos in range(arr.size):
        item = int(arr[pos])
        try:
            depth_from_top = len(stack) - stack.index(item)
            out[pos] = depth_from_top
            stack.remove(item)
        except ValueError:
            pass
        stack.append(item)
    return out


def stack_distances(trace: Sequence[int] | np.ndarray) -> np.ndarray:
    """LRU stack distances via the Olken / Bennett–Kruskal Fenwick-tree algorithm.

    For each access the algorithm needs the number of *distinct* items touched
    since the previous access to the same item.  Keeping a Fenwick tree with a
    1 at the position of every item's most recent access, that count is the
    sum of the tree over positions after the item's previous access.  Each
    access does O(log N) work.
    """
    arr = _as_trace(trace)
    n = arr.size
    out = np.full(n, COLD, dtype=np.int64)
    if n == 0:
        return out
    tree = FenwickTree(n)
    last_pos: dict[int, int] = {}
    for pos in range(n):
        item = int(arr[pos])
        prev = last_pos.get(item)
        if prev is not None:
            distinct_between = tree.range_sum(prev + 1, pos - 1)
            out[pos] = distinct_between + 1
            tree.add(prev, -1)
        tree.add(pos, 1)
        last_pos[item] = pos
    return out


def _count_smaller_right(values: np.ndarray) -> np.ndarray:
    """For each element, the number of *strictly smaller* elements to its right.

    Vectorised bottom-up merge sort: at every level the array is reshaped into
    pair-blocks whose halves are already sorted, one ``argsort`` per level
    merges all blocks at once, and a row-wise cumulative sum of the
    "came from the right half" indicator yields, for every left-half element,
    how many right-half elements precede it in sorted order — exactly its
    smaller-to-the-right contribution at this level.  Requires distinct
    values (callers pass arc-end positions, which are unique); the array is
    padded to a power of two with ``int64`` max sentinels that sort last.
    """
    n = values.size
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    size = 1
    while size < n:
        size *= 2
    vals = np.full(size, np.iinfo(np.int64).max, dtype=np.int64)
    vals[:n] = values
    origin = np.arange(size)
    counts = np.zeros(size, dtype=np.int64)
    width = 1
    while width < size:
        pair = 2 * width
        block_vals = vals.reshape(-1, pair)
        block_origin = origin.reshape(-1, pair)
        order = np.argsort(block_vals, axis=1, kind="stable")
        sorted_vals = np.take_along_axis(block_vals, order, axis=1)
        sorted_origin = np.take_along_axis(block_origin, order, axis=1)
        from_right = order >= width
        right_before = np.cumsum(from_right, axis=1) - from_right
        left = ~from_right
        counts[sorted_origin[left]] += right_before[left]
        vals = sorted_vals.reshape(-1)
        origin = sorted_origin.reshape(-1)
        width = pair
    return counts[:n]


def stack_distances_vectorized(trace: Sequence[int] | np.ndarray) -> np.ndarray:
    """Exact LRU stack distances with no per-access Python loop.

    Identity: write each reuse as an *arc* from a position to the next access
    of the same item.  For the access closing arc ``(p, t)`` the stack
    distance is ``1 +`` the number of distinct items in ``(p, t)``; a position
    ``j`` in that window contributes a distinct item iff its own next access
    falls at or after ``t``, so the non-contributing positions are exactly the
    arcs strictly nested inside ``(p, t)`` and

    ``distance(t) = t - p - #{arcs (j, next(j)) : p < j, next(j) < t}``.

    Arc starts are increasing, so the nested count per arc is "count smaller
    elements to the right" over the arc-end sequence.  Bit-identical to
    :func:`stack_distances` (cross-validated in the test-suite).
    """
    arr = _as_trace(trace)
    n = arr.size
    out = np.full(n, COLD, dtype=np.int64)
    if n == 0:
        return out
    # Adjacent equal items after a stable sort are consecutive accesses.
    order = np.argsort(arr, kind="stable")
    sorted_items = arr[order]
    same = sorted_items[1:] == sorted_items[:-1]
    starts = order[:-1][same]
    ends = order[1:][same]
    if starts.size == 0:
        return out
    by_start = np.argsort(starts)
    arc_start = starts[by_start]
    arc_end = ends[by_start]
    nested = _count_smaller_right(arc_end)
    out[arc_end] = arc_end - arc_start - nested
    return out


def stack_distance_histogram(
    trace: Sequence[int] | np.ndarray, *, max_distance: int | None = None
) -> tuple[np.ndarray, int]:
    """Histogram of finite stack distances plus the count of cold accesses.

    Returns ``(hist, cold)`` where ``hist[d - 1]`` counts accesses at stack
    distance ``d`` (1-based, up to ``max_distance`` or the number of distinct
    items) and ``cold`` counts first-ever accesses.  Uses the vectorised
    distance pass, so histogram construction never loops per access.
    """
    arr = _as_trace(trace)
    distances = stack_distances_vectorized(arr)
    finite = distances[distances != COLD]
    cold = int(arr.size - finite.size)
    limit = int(max_distance) if max_distance is not None else (int(finite.max()) if finite.size else 0)
    hist = np.zeros(max(limit, 0), dtype=np.int64)
    if finite.size:
        clipped = finite[finite <= limit] if limit else finite[:0]
        np.add.at(hist, clipped - 1, 1)
    return hist, cold


def hit_counts(trace: Sequence[int] | np.ndarray, *, max_cache_size: int | None = None) -> np.ndarray:
    """``hits_c`` for ``c = 1 .. max_cache_size`` on an arbitrary trace.

    An access hits in a fully-associative LRU cache of size ``c`` exactly when
    its stack distance is ≤ ``c``; the hit-count vector is therefore the
    cumulative sum of the stack-distance histogram.  The default cache-size
    range extends to the number of distinct items in the trace.
    """
    arr = _as_trace(trace)
    distinct = int(np.unique(arr).size) if arr.size else 0
    limit = int(max_cache_size) if max_cache_size is not None else distinct
    hist, _cold = stack_distance_histogram(arr, max_distance=limit)
    if hist.size < limit:
        hist = np.concatenate([hist, np.zeros(limit - hist.size, dtype=np.int64)])
    return np.cumsum(hist)
