"""Common interface for the cache simulators.

The paper's theory assumes a fully-associative LRU cache; the simulators in
this subpackage exist both to *validate* the closed-form results of
:mod:`repro.core.hits` against an independent, access-by-access model and to
*stress* the LRU assumption (Section VI-E limitations) by replaying the same
traces under FIFO, Belady-OPT, random replacement, set-associative mappings
and multi-level hierarchies.

Every simulator implements :class:`CacheModel`: feed it accesses one at a time
(or a whole trace) and read the aggregate :class:`CacheStats`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from .._util import check_positive_int

__all__ = ["CacheStats", "CacheModel", "simulate_trace"]


@dataclass
class CacheStats:
    """Aggregate hit/miss counters of one simulation run."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    per_item_hits: dict[int, int] = field(default_factory=dict)

    @property
    def hit_ratio(self) -> float:
        """Fraction of accesses that hit (0 when the trace is empty)."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_ratio(self) -> float:
        """Fraction of accesses that miss (0 when the trace is empty)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def record(self, item: int, hit: bool) -> None:
        """Account one access to ``item``."""
        self.accesses += 1
        if hit:
            self.hits += 1
            self.per_item_hits[item] = self.per_item_hits.get(item, 0) + 1
        else:
            self.misses += 1

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Combine two stats objects (e.g. across hierarchy levels or trace segments)."""
        merged = CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            per_item_hits=dict(self.per_item_hits),
        )
        for item, count in other.per_item_hits.items():
            merged.per_item_hits[item] = merged.per_item_hits.get(item, 0) + count
        return merged


class CacheModel(ABC):
    """A single cache with a fixed capacity and a replacement policy.

    Subclasses implement :meth:`access`; the base class provides trace replay,
    statistics and a uniform ``reset`` protocol.
    """

    def __init__(self, capacity: int):
        self.capacity = check_positive_int(capacity, "capacity")
        self.stats = CacheStats()

    @property
    @abstractmethod
    def name(self) -> str:
        """Short human-readable policy name (used in reports)."""

    @abstractmethod
    def access(self, item: int) -> bool:
        """Access ``item``; return ``True`` on a hit and update internal state."""

    @abstractmethod
    def contents(self) -> set[int]:
        """The set of items currently resident."""

    def reset(self) -> None:
        """Clear the cache contents and statistics."""
        self.stats = CacheStats()
        self._reset_state()

    @abstractmethod
    def _reset_state(self) -> None:
        """Clear policy-specific state (called by :meth:`reset`)."""

    def run(self, trace: Iterable[int]) -> CacheStats:
        """Replay an entire trace through the cache and return the statistics."""
        for item in trace:
            hit = self.access(int(item))
            self.stats.record(int(item), hit)
        return self.stats


def simulate_trace(model: CacheModel, trace: Sequence[int] | np.ndarray) -> CacheStats:
    """Reset ``model``, replay ``trace`` and return the resulting statistics."""
    model.reset()
    return model.run(np.asarray(trace).tolist())
