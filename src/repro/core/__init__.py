"""Core symmetric-locality theory: permutations, Bruhat order, reuse distance, ChainFind.

This subpackage contains the paper's primary contribution.  The most common
entry points are re-exported here:

* :class:`Permutation` and the inversion-counting helpers,
* the Bruhat order and covering graph,
* :func:`cache_hit_vector`, :func:`miss_ratio_curve` and the theorem checks,
* :func:`chain_find` with the edge labelings of Section V,
* Theorem-4 scheduling and feasibility-constrained optimisation,
* the Mahonian / integer-partition analyses of the appendix.

Examples
--------
Inversions measure locality (Theorem 2): the truncated sum of the hit
vector equals the inversion number.

>>> from repro.core import Permutation, cache_hit_vector, count_inversions
>>> sigma = Permutation([2, 0, 3, 1])
>>> int(count_inversions(sigma))
3
>>> sum(int(h) for h in cache_hit_vector(sigma)[:-1])
3
"""

from .permutation import (
    Permutation,
    adjacent_transposition,
    all_permutations,
    permutations_by_inversions,
    random_permutation,
    transposition,
)
from .inversions import (
    FenwickTree,
    count_inversions,
    count_inversions_fenwick,
    count_inversions_mergesort,
    count_inversions_naive,
    count_inversions_numpy,
    inversion_vector,
    left_inversion_counts,
    max_inversions,
)
from .bruhat import (
    bruhat_leq,
    bruhat_less,
    cocovers,
    covering_transpositions,
    covers,
    interval,
    is_covering,
    weak_covers,
    weak_order_leq,
)
from .covering_graph import (
    build_covering_graph,
    count_maximal_chains,
    is_graded,
    random_saturated_chain,
    rank_levels,
    rank_sizes,
    saturated_chains,
)
from .hits import (
    LocalityProfile,
    algorithm1_paper,
    cache_hit_vector,
    corollary1_deficit,
    hits,
    locality_profile,
    miss_ratio,
    miss_ratio_curve,
    reuse_distance_histogram,
    reuse_distances,
    stack_distances,
    theorem2_deficit,
    theorem3_compare,
    total_reuse,
)
from .labelings import (
    CompositeLabeling,
    EdgeLabeling,
    MissRatioLabeling,
    RandomTiebreakLabeling,
    RankedMissRatioLabeling,
    TransposedLabeling,
    chain_labels_nondecreasing,
    count_nondecreasing_chains,
    is_el_labeling,
    is_good_labeling,
)
from .chainfind import ChainFindResult, chain_find, chain_hit_matrix, count_tie_events
from .timescale import (
    DataMovementLabeling,
    TimescaleLabeling,
    TotalReuseLabeling,
    compare_labelings,
)
from .optimal import (
    alternating_schedule,
    best_reordering,
    matrix_traversal_costs,
    naive_schedule_total_reuse,
    optimal_reordering,
    schedule_total_reuse,
    schedule_trace,
)
from .feasibility import (
    DependencyDAG,
    best_feasible_extension,
    count_linear_extensions,
    feasibility_predicate,
    greedy_feasible_extension,
    is_feasible,
    random_linear_extension,
)
from .mahonian import (
    hit_vector_partition,
    integer_partitions,
    mahonian_number,
    mahonian_row,
    mahonian_triangle,
    partition_counts_at_level,
    partitions_at_level,
    permutations_with_inversions,
    random_permutation_with_inversions,
    truncated_miss_integral,
    truncated_miss_integral_by_level,
)

__all__ = [
    # permutation
    "Permutation",
    "adjacent_transposition",
    "all_permutations",
    "permutations_by_inversions",
    "random_permutation",
    "transposition",
    # inversions
    "FenwickTree",
    "count_inversions",
    "count_inversions_fenwick",
    "count_inversions_mergesort",
    "count_inversions_naive",
    "count_inversions_numpy",
    "inversion_vector",
    "left_inversion_counts",
    "max_inversions",
    # bruhat
    "bruhat_leq",
    "bruhat_less",
    "cocovers",
    "covering_transpositions",
    "covers",
    "interval",
    "is_covering",
    "weak_covers",
    "weak_order_leq",
    # covering graph
    "build_covering_graph",
    "count_maximal_chains",
    "is_graded",
    "random_saturated_chain",
    "rank_levels",
    "rank_sizes",
    "saturated_chains",
    # hits
    "LocalityProfile",
    "algorithm1_paper",
    "cache_hit_vector",
    "corollary1_deficit",
    "hits",
    "locality_profile",
    "miss_ratio",
    "miss_ratio_curve",
    "reuse_distance_histogram",
    "reuse_distances",
    "stack_distances",
    "theorem2_deficit",
    "theorem3_compare",
    "total_reuse",
    # labelings
    "CompositeLabeling",
    "EdgeLabeling",
    "MissRatioLabeling",
    "RandomTiebreakLabeling",
    "RankedMissRatioLabeling",
    "TransposedLabeling",
    "chain_labels_nondecreasing",
    "count_nondecreasing_chains",
    "is_el_labeling",
    "is_good_labeling",
    # chainfind
    "ChainFindResult",
    "chain_find",
    "chain_hit_matrix",
    "count_tie_events",
    # timescale / alternative labelings
    "DataMovementLabeling",
    "TimescaleLabeling",
    "TotalReuseLabeling",
    "compare_labelings",
    # optimal
    "alternating_schedule",
    "best_reordering",
    "matrix_traversal_costs",
    "naive_schedule_total_reuse",
    "optimal_reordering",
    "schedule_total_reuse",
    "schedule_trace",
    # feasibility
    "DependencyDAG",
    "best_feasible_extension",
    "count_linear_extensions",
    "feasibility_predicate",
    "greedy_feasible_extension",
    "is_feasible",
    "random_linear_extension",
    # mahonian
    "hit_vector_partition",
    "integer_partitions",
    "mahonian_number",
    "mahonian_row",
    "mahonian_triangle",
    "partition_counts_at_level",
    "partitions_at_level",
    "permutations_with_inversions",
    "random_permutation_with_inversions",
    "truncated_miss_integral",
    "truncated_miss_integral_by_level",
]
