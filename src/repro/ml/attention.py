"""Multi-head attention with parameter-access tracing.

The paper singles out the key/value/projection matrices of multi-head
attention as candidates for symmetric-locality scheduling: heads are
permutation-equivariant, so the order in which their parameter blocks are
traversed is free.  :class:`TracedAttention` provides

* a real NumPy multi-head self-attention forward pass,
* verification that permuting the heads (and the corresponding slices of the
  projection matrices) leaves the output unchanged,
* per-pass parameter-access traces at head-block granularity, with an optional
  per-pass head order so the Theorem-4 alternation can be applied at the head
  level.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .._util import check_positive_int, ensure_rng
from ..core.permutation import Permutation
from ..trace.trace import Trace
from .equivariance import softmax
from .tensors import TensorLayout, TensorSpec

__all__ = ["TracedAttention"]


class TracedAttention:
    """Multi-head self-attention whose parameter traversals are traced.

    Parameters
    ----------
    d_model:
        Model (embedding) dimension; must be divisible by ``num_heads``.
    num_heads:
        Number of attention heads.
    granularity:
        Number of consecutive weights per data item in the traces.
    rng:
        Seed or generator for weight initialisation.
    """

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        *,
        granularity: int = 64,
        rng: np.random.Generator | int | None = None,
    ):
        self.d_model = check_positive_int(d_model, "d_model")
        self.num_heads = check_positive_int(num_heads, "num_heads")
        if d_model % num_heads:
            raise ValueError(f"d_model={d_model} must be divisible by num_heads={num_heads}")
        self.head_dim = d_model // num_heads
        self.granularity = check_positive_int(granularity, "granularity")
        generator = ensure_rng(rng)
        scale = 1.0 / np.sqrt(d_model)
        # per-head projection slices: w_q/k/v[h] has shape (d_model, head_dim);
        # w_o[h] has shape (head_dim, d_model) so that concat-then-project equals
        # summing per-head outputs.
        self.w_q = generator.standard_normal((num_heads, d_model, self.head_dim)) * scale
        self.w_k = generator.standard_normal((num_heads, d_model, self.head_dim)) * scale
        self.w_v = generator.standard_normal((num_heads, d_model, self.head_dim)) * scale
        self.w_o = generator.standard_normal((num_heads, self.head_dim, d_model)) * scale
        specs = [TensorSpec(f"head{h}", (4, d_model, self.head_dim), granularity) for h in range(num_heads)]
        self.layout = TensorLayout(specs)

    # ------------------------------------------------------------------ #
    @property
    def num_weight_items(self) -> int:
        """Total number of parameter blocks across all heads."""
        return self.layout.total_items

    def head_items(self, head: int) -> np.ndarray:
        """Item labels of one head's parameter blocks."""
        return self.layout.items_of(f"head{head}")

    def forward(self, x: np.ndarray, *, head_order: Sequence[int] | Permutation | None = None) -> np.ndarray:
        """Self-attention output for token matrix ``x`` of shape ``(tokens, d_model)``.

        ``head_order`` only affects the order in which heads are *processed*
        (and therefore the access trace); the sum over heads is commutative so
        the output is identical for every order — the permutation-equivariance
        fact the optimisation relies on.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.d_model:
            raise ValueError(f"x must have shape (tokens, {self.d_model}), got {x.shape}")
        order = self._resolve_head_order(head_order)
        out = np.zeros((x.shape[0], self.d_model), dtype=np.float64)
        scale = 1.0 / np.sqrt(self.head_dim)
        for h in order:
            q = x @ self.w_q[h]
            k = x @ self.w_k[h]
            v = x @ self.w_v[h]
            attn = softmax((q @ k.T) * scale, axis=-1)
            out += (attn @ v) @ self.w_o[h]
        return out

    def _resolve_head_order(self, head_order) -> list[int]:
        if head_order is None:
            return list(range(self.num_heads))
        if isinstance(head_order, Permutation):
            if head_order.size != self.num_heads:
                raise ValueError(f"head_order must act on {self.num_heads} heads")
            return list(head_order.one_line)
        order = [int(h) for h in head_order]
        if sorted(order) != list(range(self.num_heads)):
            raise ValueError("head_order must be a permutation of the head indices")
        return order

    # ------------------------------------------------------------------ #
    def pass_items(self, *, head_order: Sequence[int] | Permutation | None = None) -> np.ndarray:
        """Parameter-access items of one pass, visiting heads in the given order."""
        order = self._resolve_head_order(head_order)
        return np.concatenate([self.head_items(h) for h in order])

    def access_trace(
        self,
        passes: int,
        *,
        head_schedule: Sequence[Sequence[int] | Permutation | None] | None = None,
    ) -> Trace:
        """Parameter-access trace of ``passes`` traversals of all head parameters.

        ``head_schedule`` optionally gives a head order per pass; ``None``
        entries (or no schedule) use the canonical head order.  Alternating
        canonical / reversed head order is the head-granularity sawtooth
        schedule the benchmarks evaluate.
        """
        passes = check_positive_int(passes, "passes")
        if head_schedule is not None and len(head_schedule) != passes:
            raise ValueError(f"head_schedule must have {passes} entries, got {len(head_schedule)}")
        chunks = []
        for p in range(passes):
            order = head_schedule[p] if head_schedule is not None else None
            chunks.append(self.pass_items(head_order=order))
        return Trace(
            np.concatenate(chunks),
            name=f"attention(d={self.d_model}, heads={self.num_heads}, passes={passes})",
        )
