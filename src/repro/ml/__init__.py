"""Section VI application layer: permutation-equivariant models and traversal scheduling."""

from .attention import TracedAttention
from .equivariance import (
    gelu,
    hidden_unit_permutation_invariant,
    is_permutation_equivariant,
    layer_norm,
    linear,
    relu,
    self_attention,
    softmax,
)
from .gnn import (
    RandomGraph,
    bfs_order,
    degree_order,
    message_passing_trace,
    reverse_cuthill_mckee_order,
)
from .mlp import MLPPassRecord, TracedMLP
from .schedule import ScheduleEvaluation, build_schedule, compare_schedules, evaluate_schedule
from .tensors import TensorLayout, TensorSpec

__all__ = [
    "TracedAttention",
    "gelu",
    "hidden_unit_permutation_invariant",
    "is_permutation_equivariant",
    "layer_norm",
    "linear",
    "relu",
    "self_attention",
    "softmax",
    "RandomGraph",
    "bfs_order",
    "degree_order",
    "message_passing_trace",
    "reverse_cuthill_mckee_order",
    "MLPPassRecord",
    "TracedMLP",
    "ScheduleEvaluation",
    "build_schedule",
    "compare_schedules",
    "evaluate_schedule",
    "TensorLayout",
    "TensorSpec",
]
