"""Unit tests for the engine's columnar per-tenant state."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.columnar import (
    TenantDistancePasses,
    check_tenant_ids,
    discretized_from_distances,
    exact_discretized_curve,
    idle_curve,
    split_by_tenant,
    tenant_positions,
)


def _composed(length=600, tenants=3, items=40, seed=11):
    rng = np.random.default_rng(seed)
    return rng.integers(0, items, size=length), rng.integers(0, tenants, size=length)


class TestSplits:
    def test_split_round_trips_every_event(self):
        items, ids = _composed()
        streams = split_by_tenant(items, ids, 3)
        assert sum(s.size for s in streams) == items.size
        for t, stream in enumerate(streams):
            np.testing.assert_array_equal(stream, items[ids == t])

    def test_positions_align_with_split(self):
        items, ids = _composed()
        positions = tenant_positions(ids, 3)
        for t, idx in enumerate(positions):
            np.testing.assert_array_equal(items[idx], items[ids == t])

    def test_rejects_out_of_range_tenant(self):
        with pytest.raises(ValueError, match="tenant ids"):
            check_tenant_ids(np.array([0, 3]), 3)
        with pytest.raises(ValueError):
            split_by_tenant(np.array([1, 2]), np.array([0, 3]), 3)

    def test_rejects_misaligned_shapes(self):
        with pytest.raises(ValueError, match="align"):
            split_by_tenant(np.array([1, 2, 3]), np.array([0, 1]), 2)


class TestCurveExtraction:
    def test_empty_stream_is_idle(self):
        curve = exact_discretized_curve(np.array([], dtype=np.int64), budget=16, unit=4)
        idle = idle_curve(4)
        assert list(curve.misses) == list(idle.misses)
        assert curve.accesses == idle.accesses

    def test_distances_path_matches_exact_path(self):
        from repro.cache.stack_distance import stack_distances_vectorized

        items, _ = _composed(length=400, tenants=1)
        for budget, unit in ((32, 1), (32, 4), (7, 3)):
            via_stream = exact_discretized_curve(items, budget, unit)
            via_distances = discretized_from_distances(stack_distances_vectorized(items), budget, unit)
            assert list(via_stream.misses) == list(via_distances.misses)
            assert via_stream.accesses == via_distances.accesses


class TestTenantDistancePasses:
    def test_whole_stream_curve_matches_from_scratch_extraction(self):
        items, ids = _composed()
        passes = TenantDistancePasses(items, ids, 3)
        for t in range(3):
            via_passes = passes.whole_stream_curve(t, budget=24, unit=2)
            from_scratch = exact_discretized_curve(items[ids == t], budget=24, unit=2)
            assert list(via_passes.misses) == list(from_scratch.misses)

    def test_window_curve_matches_from_scratch_extraction(self):
        # The core amortisation claim: re-labeling pre-window reuses as cold
        # reproduces exactly what a fresh pass over the window's sub-trace
        # measures — for every window, including empty ones.
        items, ids = _composed()
        passes = TenantDistancePasses(items, ids, 3)
        for bounds in ((0, 200), (200, 450), (450, 600), (37, 41), (100, 100)):
            for t in range(3):
                lo, hi = bounds
                window_items = items[lo:hi][ids[lo:hi] == t]
                via_passes = passes.window_curve(t, bounds, budget=24, unit=2)
                from_scratch = exact_discretized_curve(window_items, budget=24, unit=2)
                assert list(via_passes.misses) == list(from_scratch.misses), (bounds, t)
                assert via_passes.accesses == from_scratch.accesses

    def test_num_tenants(self):
        items, ids = _composed()
        assert TenantDistancePasses(items, ids, 3).num_tenants == 3
