"""Online adaptive re-partitioning vs. the static whole-trace optimum.

The online engine's acceptance claim, asserted on the canonical 3-phase
drifting two-tenant seesaw (72k composed references): adaptive
re-partitioning from windowed-SHARDS profiles achieves a *strictly lower*
overall miss ratio than the best static whole-trace partition, while the
windowed profiler touches at most **2x** the references a single whole-trace
exact profile would (so the adaptation is not bought with unbounded
profiling), and results are bit-identical across ``--workers``.  The
per-epoch miss-ratio series of static vs. adaptive vs. oracle-per-phase
lands in ``benchmarks/results/`` for re-plotting.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table, write_csv
from repro.obs import record_perf
from repro.online import OnlineJob, run_replay
from repro.trace.drift import three_phase_pair

LENGTH_PER_PHASE = 12_000
SEED = 7
JOB = OnlineJob(
    budget=1150,
    window=6000,
    epoch=2000,
    method="hull",
    rate=0.5,
    move_cost=1.0,
    name="bench-online",
)


def test_adaptive_beats_static_within_bounded_profiling_work(benchmark, results_dir, perf_trajectory):
    workload = three_phase_pair(LENGTH_PER_PHASE, seed=SEED)
    result = run_replay(workload, JOB)

    # Headline: a strictly lower overall miss ratio than the static optimum,
    # by a measurable margin (>= 1 point of miss ratio on this workload).
    assert result.adaptive_miss_ratio < result.static_miss_ratio, (
        f"adaptive ({result.adaptive_miss_ratio:.4f}) must beat the static "
        f"whole-trace partition ({result.static_miss_ratio:.4f})"
    )
    assert result.win_vs_static >= 0.01, f"expected >= 1 point of miss-ratio win, got {result.win_vs_static:.4f}"

    # The win is not bought with unbounded profiling: every windowed profile
    # pass together touches at most 2x the references one exact whole-trace
    # profile would process.
    assert result.profiled_references <= 2 * result.accesses, (
        f"windowed profiling touched {result.profiled_references} references, "
        f"more than 2x the {result.accesses}-reference trace"
    )

    # The engine adapted for real, and the oracle brackets it from below.
    assert result.reallocations >= 2
    assert result.oracle_miss_ratio <= result.adaptive_miss_ratio

    # Bit-identical across worker counts (workers only fan profile extraction).
    parallel = run_replay(workload, JOB, workers=4)
    assert parallel.summary() == result.summary()
    assert parallel.rows() == result.rows()

    rows = result.rows()
    print()
    print(
        format_table(
            rows,
            title=(
                f"Static vs adaptive vs oracle per epoch — {result.accesses} refs, "
                f"3 phases, budget {JOB.budget}, window {JOB.window}, epoch {JOB.epoch}, rate {JOB.rate}"
            ),
        )
    )
    summary = result.summary()
    print(format_table([summary], title="online adaptation scoreboard"))
    write_csv(results_dir / "online_epoch_series.csv", rows)
    write_csv(results_dir / "online_summary.csv", [summary])
    record_perf(perf_trajectory, "bench_online", "win_vs_static", result.win_vs_static, unit="miss-ratio")
    assert np.isfinite([row["adaptive"] for row in rows]).all()

    benchmark(run_replay, workload, JOB)


def test_adaptation_win_grows_with_drift_amplitude(results_dir):
    """The win over static scales with how asymmetric the phases are.

    With ``large == small`` the workload is stationary in aggregate demand
    and adaptation buys (almost) nothing; widening the seesaw opens the gap.
    This pins the *mechanism*: the engine wins exactly when there is drift to
    exploit, rather than through some static mis-configuration.
    """
    rows = []
    for large, small in ((575, 575), (700, 450), (900, 250)):
        workload = three_phase_pair(8000, large=large, small=small, seed=SEED)
        result = run_replay(workload, JOB)
        rows.append(
            {
                "large": large,
                "small": small,
                "static": result.static_miss_ratio,
                "adaptive": result.adaptive_miss_ratio,
                "oracle": result.oracle_miss_ratio,
                "win_vs_static": result.win_vs_static,
                "reallocations": result.reallocations,
            }
        )
    # the widest seesaw must show a clearly larger win than the stationary one
    assert rows[-1]["win_vs_static"] > rows[0]["win_vs_static"]
    assert rows[-1]["win_vs_static"] > 0.0

    print()
    print(format_table(rows, title="adaptation win vs drift amplitude (working-set seesaw width)"))
    write_csv(results_dir / "online_win_by_drift.csv", rows)
