"""Integration tests spanning several subsystems.

Each test exercises a realistic end-to-end path a user of the library would
take: from a workload or model, through the permutation theory, to cache
measurements — asserting that the independently implemented layers agree with
each other and with the paper's qualitative claims.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import run_fig1_mrc_by_inversion, fig1_monotone_violations
from repro.cache import (
    CacheHierarchy,
    LRUCache,
    MissRatioCurve,
    mrc_from_trace,
    simulate_opt,
)
from repro.core import (
    DependencyDAG,
    MissRatioLabeling,
    Permutation,
    TransposedLabeling,
    alternating_schedule,
    best_feasible_extension,
    cache_hit_vector,
    chain_find,
    feasibility_predicate,
    is_feasible,
    miss_ratio_curve,
    random_permutation,
)
from repro.ml import TracedMLP, compare_schedules
from repro.trace import (
    PeriodicTrace,
    fixed_inversion_retraversal,
    mlp_parameter_trace,
    read_npz,
    read_text,
    stream_copy,
    write_npz,
    write_text,
)


class TestTheoryVsSimulationEndToEnd:
    def test_full_pipeline_closed_form_vs_trace_vs_cache(self, rng):
        """Permutation → periodic trace → stack distances → LRU — all three agree."""
        sigma = random_permutation(40, rng)
        periodic = PeriodicTrace(sigma)
        trace = periodic.to_trace()

        closed_form = miss_ratio_curve(sigma, convention="full")
        from_trace = mrc_from_trace(trace.accesses).as_array()
        assert np.allclose(closed_form, from_trace)

        for cache_size in (1, 10, 20, 40):
            simulated = LRUCache(cache_size).run(trace).hits
            assert simulated == int(cache_hit_vector(sigma)[cache_size - 1])

    def test_chainfind_improves_measured_miss_ratio_monotonically(self):
        """Every ChainFind step's permutation, measured via real LRU simulation,
        never increases the total (summed) miss count."""
        result = chain_find(Permutation.identity(6), MissRatioLabeling())
        total_hits = []
        for sigma in result.chain:
            trace = PeriodicTrace(sigma).to_trace()
            hits_sum = sum(LRUCache(c).run(trace).hits for c in range(1, 6))
            total_hits.append(hits_sum)
        assert all(b == a + 1 for a, b in zip(total_hits, total_hits[1:]))

    def test_good_labeling_chain_reaches_sawtooth_and_improves_everywhere(self):
        result = chain_find(Permutation.identity(5), TransposedLabeling())
        assert result.end.is_reverse()
        first = miss_ratio_curve(result.start)
        last = miss_ratio_curve(result.end)
        assert np.all(last <= first + 1e-12)
        assert result.chain_multiplicity == 1


class TestConstrainedOptimisationEndToEnd:
    def test_feasible_chainfind_end_matches_exact_optimum_quality(self, rng):
        """ChainFind restricted by a dependence DAG stays feasible; the exact DP
        bound is an upper bound on what it reaches."""
        dag = DependencyDAG.random(8, 0.25, rng)
        predicate = feasibility_predicate(dag)
        result = chain_find(Permutation.identity(8), feasibility=predicate)
        assert all(is_feasible(sigma, dag) for sigma in result.chain)
        _, exact = best_feasible_extension(dag)
        assert result.end.inversions() <= exact

    def test_constrained_schedule_improves_real_cache_behaviour(self, rng):
        """Using the best feasible re-ordering in a Theorem-4 alternation
        improves the measured miss ratio of a repeated traversal."""
        m = 16
        dag = DependencyDAG.blocks([4, 4, 4, 4])
        best, _ = best_feasible_extension(dag)
        passes = 4
        naive = np.concatenate([np.arange(m)] * passes)
        schedule = alternating_schedule(best, passes)
        optimised = np.concatenate([np.asarray(p.apply(np.arange(m))) for p in schedule])
        cache = m // 2
        naive_mr = LRUCache(cache).run(naive.tolist()).miss_ratio
        optimised_mr = LRUCache(cache).run(optimised.tolist()).miss_ratio
        assert optimised_mr <= naive_mr


class TestWorkloadsEndToEnd:
    def test_stream_has_worst_locality_and_opt_cannot_fix_cold_misses(self):
        trace = stream_copy(128, repetitions=2)
        lru = LRUCache(64).run(trace)
        opt = simulate_opt(trace.accesses, 64)
        assert lru.hit_ratio == 0.0
        assert opt.misses >= trace.footprint  # cold misses are unavoidable

    def test_mlp_workload_profits_from_sawtooth_weight_order(self):
        layers = [32, 64, 16]
        cyclic = mlp_parameter_trace(layers, passes=4, granularity=16)
        sawtooth = mlp_parameter_trace(
            layers, passes=4, granularity=16, weight_order=Permutation.reverse(cyclic.footprint)
        )
        assert cyclic.footprint == sawtooth.footprint
        hierarchy_a = CacheHierarchy([cyclic.footprint // 8, cyclic.footprint // 2])
        hierarchy_a.run(cyclic)
        hierarchy_b = CacheHierarchy([cyclic.footprint // 8, cyclic.footprint // 2])
        hierarchy_b.run(sawtooth)
        assert hierarchy_b.amat() < hierarchy_a.amat()

    def test_traced_mlp_training_with_schedule_keeps_numerics_identical(self, rng):
        """The Theorem-4 traversal schedule changes only the access order,
        never the computed losses."""
        x = rng.standard_normal((8, 12))
        y = rng.standard_normal((8, 4))
        mlp_a = TracedMLP([12, 24, 4], granularity=8, rng=3)
        mlp_b = TracedMLP([12, 24, 4], granularity=8, rng=3)
        m = mlp_a.num_weight_items
        schedule = alternating_schedule(Permutation.reverse(m), 4)
        loss_a = mlp_a.backward(x, y).loss
        mlp_b.training_trace(x, y, steps=2, schedule=schedule)
        loss_b = mlp_b.backward(x, y).loss
        assert loss_a == pytest.approx(loss_b)

    def test_schedule_comparison_matches_paper_factor_of_two(self):
        results = compare_schedules(512, 8, max_cache_size=512)
        ratio = results["cyclic"].total_reuse / results["sawtooth"].total_reuse
        assert 1.9 < ratio < 2.01


class TestFigureOneAggregate:
    def test_average_curves_separate_cleanly_for_s5_and_s6(self):
        for m in (5, 6):
            result = run_fig1_mrc_by_inversion(m)
            assert fig1_monotone_violations(result) == 0


class TestTraceFilesEndToEnd:
    def test_analysis_of_a_trace_file_round_trip(self, tmp_path, rng):
        """Write a re-traversal trace to disk, read it back, and recover the
        permutation-level locality statistics from the raw file."""
        sigma = fixed_inversion_retraversal(24, 100, rng).sigma
        original = PeriodicTrace(sigma).to_trace()
        write_text(original, tmp_path / "trace.txt")
        write_npz(original, tmp_path / "trace.npz")

        loaded_text = read_text(tmp_path / "trace.txt")
        loaded_npz, _meta = read_npz(tmp_path / "trace.npz")
        assert loaded_text == original
        assert loaded_npz == original

        curve_from_file = mrc_from_trace(loaded_text.accesses)
        assert isinstance(curve_from_file, MissRatioCurve)
        assert np.allclose(curve_from_file.as_array(), miss_ratio_curve(sigma, convention="full"))
