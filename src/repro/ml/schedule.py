"""Traversal scheduling and evaluation for repeated parameter accesses.

This is the glue between the theory (:mod:`repro.core.optimal`) and the model
tracing layers: given a model's parameter item count and a number of passes,
build candidate traversal schedules (naive cyclic, Theorem-4 sawtooth
alternation, blocked, or feasibility-constrained), materialise their access
traces, and evaluate them with the cache substrate — total reuse, miss-ratio
curves and average memory access time under a hierarchy.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from .._util import check_positive_int
from ..cache.hierarchy import CacheHierarchy
from ..cache.mrc import MissRatioCurve, mrc_from_trace
from ..cache.stack_distance import COLD, stack_distances
from ..core.optimal import alternating_schedule
from ..core.permutation import Permutation
from ..trace.generators import repeated_traversals
from ..trace.trace import Trace

__all__ = ["ScheduleEvaluation", "build_schedule", "evaluate_schedule", "compare_schedules"]


@dataclass(frozen=True)
class ScheduleEvaluation:
    """Locality metrics of one traversal schedule."""

    name: str
    passes: int
    items: int
    total_reuse: int
    mean_stack_distance: float
    mrc: MissRatioCurve
    amat: float | None = None

    def miss_ratio(self, cache_size: int) -> float:
        """Miss ratio of the schedule's trace at one cache size."""
        return self.mrc[cache_size]


def build_schedule(kind: str, items: int, passes: int) -> list[Permutation]:
    """Build a named traversal schedule over ``items`` data items.

    Kinds
    -----
    ``"cyclic"``
        Identity order on every pass (the STREAM-like baseline).
    ``"sawtooth"``
        Theorem-4 alternation: identity, reverse, identity, reverse, …
    ``"reverse-every-pass"``
        Reverse order on every pass after the first — a deliberately *wrong*
        reading of the optimisation, included to show why the alternation
        matters (two consecutive reversed passes are cyclic relative to each
        other).
    """
    items = check_positive_int(items, "items")
    passes = check_positive_int(passes, "passes")
    identity = Permutation.identity(items)
    reverse = Permutation.reverse(items)
    if kind == "cyclic":
        return [identity] * passes
    if kind == "sawtooth":
        return alternating_schedule(reverse, passes)
    if kind == "reverse-every-pass":
        return [identity] + [reverse] * (passes - 1)
    raise ValueError(f"unknown schedule kind {kind!r}")


def evaluate_schedule(
    schedule: Sequence[Permutation],
    *,
    name: str | None = None,
    hierarchy_levels: Sequence[int] | None = None,
    max_cache_size: int | None = None,
) -> ScheduleEvaluation:
    """Materialise a schedule's access trace and measure its locality.

    Parameters
    ----------
    schedule:
        One permutation per pass over the items.
    hierarchy_levels:
        Optional cache-hierarchy capacities; when given, the average memory
        access time of the trace under that hierarchy is included.
    max_cache_size:
        Upper cache size for the miss-ratio curve (defaults to the footprint).
    """
    if not schedule:
        raise ValueError("schedule must contain at least one pass")
    trace = repeated_traversals(list(schedule))
    return _evaluate_trace(
        trace,
        passes=len(schedule),
        items=schedule[0].size,
        name=name or f"schedule({len(schedule)} passes)",
        hierarchy_levels=hierarchy_levels,
        max_cache_size=max_cache_size,
    )


def _evaluate_trace(
    trace: Trace,
    *,
    passes: int,
    items: int,
    name: str,
    hierarchy_levels: Sequence[int] | None,
    max_cache_size: int | None,
) -> ScheduleEvaluation:
    distances = stack_distances(trace.accesses)
    finite = distances[distances != COLD]
    total_reuse = int(finite.sum())
    mean_sd = float(finite.mean()) if finite.size else float("nan")
    mrc = mrc_from_trace(trace.accesses, max_cache_size=max_cache_size)
    amat = None
    if hierarchy_levels:
        hierarchy = CacheHierarchy(list(hierarchy_levels))
        hierarchy.run(trace.accesses.tolist())
        amat = hierarchy.amat()
    return ScheduleEvaluation(
        name=name,
        passes=passes,
        items=items,
        total_reuse=total_reuse,
        mean_stack_distance=mean_sd,
        mrc=mrc,
        amat=amat,
    )


def compare_schedules(
    items: int,
    passes: int,
    *,
    kinds: Sequence[str] = ("cyclic", "sawtooth", "reverse-every-pass"),
    hierarchy_levels: Sequence[int] | None = None,
    max_cache_size: int | None = None,
) -> dict[str, ScheduleEvaluation]:
    """Evaluate several named schedules over the same item set and pass count."""
    out: dict[str, ScheduleEvaluation] = {}
    for kind in kinds:
        schedule = build_schedule(kind, items, passes)
        out[kind] = evaluate_schedule(
            schedule,
            name=kind,
            hierarchy_levels=hierarchy_levels,
            max_cache_size=max_cache_size,
        )
    return out
