"""Streaming replay: static vs. adaptive vs. oracle-per-phase partitioning.

:func:`run_replay` is the top of the online stack.  It feeds a drifting
multi-tenant trace (:class:`repro.trace.drift.DriftingWorkload`) through
three partitioned LRU lanes at once:

``static``
    The whole-trace optimum: per-tenant *exact* MRCs of the full trace,
    allocated once up front (what the offline :mod:`repro.alloc` pipeline
    would deploy) and never changed.
``adaptive``
    The online engine: per-tenant :class:`~repro.online.windowed.WindowedShardsSketch`
    profiles refreshed every ``epoch`` events, per-tenant
    :class:`~repro.online.phases.PhaseChangeDetector` flags, and a
    :class:`~repro.online.controller.ReallocationController` that re-runs the
    allocator and applies the proposal when the predicted gain beats the
    move-cost penalty.  Resizes take effect immediately: a shrunk partition
    evicts its least-recent blocks and a grown one warms up through ordinary
    misses, so adaptation pays its real warm-up cost in the measured series.
``oracle``
    The upper bound: exact per-phase MRCs allocated at the *true* phase
    boundaries (which only the generator knows).

All three run in the same event loop, so their per-epoch miss-ratio series
are directly comparable.  Every quantity is a pure function of the workload
and the job, so results are bit-identical for every worker count (asserted
in ``tests/online/test_replay.py``); under the ``reference`` engine
``workers`` fans the up-front exact profile extractions (whole-trace and
per-phase) across the engine's process pool, while the default ``batch``
engine derives them from its own distance pass and never needs the pool.

The replay is built on the :mod:`repro.engine` substrate: the
static/adaptive/oracle lanes are a :class:`repro.engine.lanes.LaneSet`
(batch and per-event reference data planes, bit-identical), the per-tenant
profile extraction is one :class:`repro.engine.columnar.TenantDistancePasses`
distance pass per tenant, and the merged epoch/phase stop schedule comes
from :func:`repro.engine.segments.replay_stops`.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from ..alloc.curves import DiscretizedMRC, discretize_curve
from ..engine.columnar import TenantDistancePasses, exact_discretized_curve, idle_curve
from ..engine.job import check_choice, check_fraction, check_non_negative, check_positive, check_unit
from ..engine.lanes import LANE_ENGINES, LaneSet, PartitionedLRU
from ..engine.runner import check_workers, pool_map
from ..engine.segments import phase_of_last_event, replay_stops
from ..obs import get_registry, span
from ..resilience.checkpoint import latest_step, load_checkpoint, write_checkpoint
from ..resilience.faults import fire as _fire_fault
from ..resilience.policy import RetryPolicy
from ..trace.drift import DriftingWorkload
from .controller import ReallocationController
from .phases import PhaseChangeDetector
from .windowed import WindowedShardsSketch, WindowSnapshot, curve_of_snapshot

__all__ = [
    "OnlineJob",
    "EpochStats",
    "ReplayResult",
    "PartitionedLRU",
    "replay_fingerprint",
    "run_replay",
    "REPLAY_ENGINES",
]

#: The selectable replay data planes (see :func:`run_replay`).
REPLAY_ENGINES: tuple[str, ...] = LANE_ENGINES


@dataclass(frozen=True)
class OnlineJob:
    """Configuration of one online re-partitioning run.

    Parameters
    ----------
    budget:
        Shared cache capacity in blocks.
    window:
        Windowed-profiler span in *composed-trace* events; the replay engine
        keeps every tenant's sketch on the shared timeline, so a tenant's
        window covers roughly ``window × its access share`` own references.
    epoch:
        Re-profiling period in composed-trace events; profiles are refreshed
        and the controller consulted at every multiple of ``epoch``.
    method:
        Allocator (``greedy`` | ``dp`` | ``hull``), shared by all three
        systems.
    decay, rate, profile_seed:
        Windowed-sketch knobs (exponential decay rate, spatial sampling rate,
        hash seed); see :class:`~repro.online.windowed.WindowedShardsSketch`.
    move_cost:
        Warm-up misses charged per block that changes hands on a resize.
    horizon_epochs:
        How many epochs an applied re-partition is assumed to stay useful;
        scales the controller's predicted gain against the move cost.
    threshold, hysteresis:
        Phase-change detector knobs; a flagged change consults the
        controller immediately.  The default hysteresis of 1 reacts within
        one epoch — raise it when regimes are long and windows noisy enough
        that single-epoch excursions should not trigger a consult.
    realloc_epochs:
        Fixed re-allocation cadence: without a phase-change flag the
        controller is consulted only every ``realloc_epochs``-th epoch, so
        the detector knobs genuinely gate how fast churn can happen.
    unit:
        Allocation granularity in blocks.
    """

    budget: int
    window: int
    epoch: int
    method: str = "hull"
    decay: float = 0.0
    rate: float = 1.0
    move_cost: float = 1.0
    horizon_epochs: int = 8
    threshold: float = 0.03
    hysteresis: int = 1
    realloc_epochs: int = 4
    unit: int = 1
    profile_seed: int = 0
    name: str = "online"

    def __post_init__(self):
        for field_name in ("budget", "window", "epoch", "horizon_epochs", "realloc_epochs", "hysteresis"):
            check_positive(field_name, getattr(self, field_name))
        check_unit(self.unit, self.budget)
        # Fail fast on the knobs otherwise only checked deep inside the run,
        # after the (expensive) exact whole-trace profiling already happened.
        check_choice("method", self.method, ("greedy", "dp", "hull"))
        check_fraction("rate", self.rate)
        check_non_negative("decay", self.decay)
        check_non_negative("move_cost", self.move_cost)
        if float(self.threshold) <= 0.0:
            raise ValueError(f"threshold must be positive, got {self.threshold}")


@dataclass(frozen=True)
class EpochStats:
    """Per-epoch measurement of the three systems.

    ``phase`` is the workload phase containing the epoch's *last* event (an
    epoch that straddles a boundary is attributed to the regime it ends in).
    """

    index: int
    start: int
    end: int
    phase: int
    static_miss_ratio: float
    adaptive_miss_ratio: float
    oracle_miss_ratio: float
    distance: float
    phase_change: bool
    reallocated: bool
    moved_blocks: int
    adaptive_allocation: tuple[int, ...]

    def row(self) -> dict:
        """Flat dictionary for tables and CSV export."""
        return {
            "epoch": self.index,
            "start": self.start,
            "end": self.end,
            "phase": self.phase,
            "static": self.static_miss_ratio,
            "adaptive": self.adaptive_miss_ratio,
            "oracle": self.oracle_miss_ratio,
            "distance": self.distance,
            "phase_change": self.phase_change,
            "reallocated": self.reallocated,
            "moved_blocks": self.moved_blocks,
            "allocation": "/".join(str(c) for c in self.adaptive_allocation),
        }


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of one :func:`run_replay` call."""

    name: str
    accesses: int
    tenants: tuple[str, ...]
    budget: int
    epochs: tuple[EpochStats, ...]
    static_miss_ratio: float
    adaptive_miss_ratio: float
    oracle_miss_ratio: float
    static_allocation: tuple[int, ...]
    final_allocation: tuple[int, ...]
    reallocations: int
    phase_changes: int
    profiled_references: int
    #: The oracle's per-phase splits (applied at the true phase boundaries);
    #: exposed so benchmarks can re-drive the exact lane schedules.
    oracle_allocations: tuple[tuple[int, ...], ...] = ()
    #: Tenant-epochs whose windowed profile extraction failed; each one held
    #: the last-known-good allocation instead of consulting the controller
    #: (flagged per epoch in the ``online.epochs`` metrics series).  Kept out
    #: of :meth:`summary` so healthy-run outputs are unchanged.
    profile_failures: int = 0

    @property
    def win_vs_static(self) -> float:
        """Overall miss-ratio reduction of adaptive over static (positive = win)."""
        return self.static_miss_ratio - self.adaptive_miss_ratio

    @property
    def regret_vs_oracle(self) -> float:
        """Overall miss-ratio gap between adaptive and the per-phase oracle."""
        return self.adaptive_miss_ratio - self.oracle_miss_ratio

    def rows(self) -> list[dict]:
        """Per-epoch rows for tables and CSV export."""
        return [epoch.row() for epoch in self.epochs]

    def summary(self) -> dict:
        """One aggregate row (the adaptation scoreboard)."""
        return {
            "job": self.name,
            "accesses": self.accesses,
            "budget": self.budget,
            "static": self.static_miss_ratio,
            "adaptive": self.adaptive_miss_ratio,
            "oracle": self.oracle_miss_ratio,
            "win_vs_static": self.win_vs_static,
            "regret_vs_oracle": self.regret_vs_oracle,
            "reallocations": self.reallocations,
            "phase_changes": self.phase_changes,
            "profiled_references": self.profiled_references,
        }


def _exact_discretized(task: tuple[np.ndarray, int, int]) -> DiscretizedMRC:
    """Pool worker: exact whole-stream MRC, discretized to allocation units."""
    stream, budget, unit = task
    return exact_discretized_curve(stream, budget, unit)


def _windowed_profile(task: tuple[WindowSnapshot, int, int]):
    """Windowed-sketch curve (for the detector) plus its discretization.

    Returns ``(curve, discretized)``; ``curve`` is ``None`` for a tenant whose
    sampled window is empty (no traffic), which maps to the idle zero-demand
    discretization so the allocator starves it.
    """
    snapshot, budget, unit = task
    if snapshot.sampled == 0:
        return None, idle_curve(unit)
    curve = curve_of_snapshot(snapshot, max_cache_size=budget)
    return curve, discretize_curve(curve, budget, unit=unit)


def _initial_split(num_tenants: int, budget: int, unit: int) -> tuple[int, ...]:
    """Deterministic cold-start split: equal units, remainder to low indices."""
    units = budget // unit
    base, extra = divmod(units, num_tenants)
    return tuple((base + (1 if t < extra else 0)) * unit for t in range(num_tenants))


def replay_fingerprint(workload: DriftingWorkload, job: OnlineJob, engine: str) -> str:
    """Stable identity of one logical replay (workload + job + engine).

    Pins a checkpoint store to exactly one run: the job knobs, the engine,
    the phase boundaries and a CRC of both trace columns all feed a SHA-256,
    so resuming with *any* different configuration is rejected up front
    instead of silently continuing somebody else's state.
    """
    composed = workload.composed
    items = np.ascontiguousarray(composed.trace.accesses, dtype=np.int64)
    ids = np.ascontiguousarray(composed.tenant_ids, dtype=np.int64)
    basis = {
        "engine": str(engine),
        "job": asdict(job),
        "accesses": int(items.size),
        "tenants": list(composed.names),
        "boundaries": [int(b) for b in workload.boundaries],
        "items_crc": zlib.crc32(items.tobytes()) & 0xFFFFFFFF,
        "ids_crc": zlib.crc32(ids.tobytes()) & 0xFFFFFFFF,
    }
    digest = hashlib.sha256(json.dumps(basis, sort_keys=True).encode("utf-8")).hexdigest()
    return f"online/1/{digest[:32]}"


def run_replay(
    workload: DriftingWorkload,
    job: OnlineJob,
    *,
    workers: int = 1,
    engine: str = "batch",
    policy: RetryPolicy | None = None,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int = 1,
    resume: bool = False,
) -> ReplayResult:
    """Replay a drifting workload under static, adaptive and oracle partitioning.

    ``engine`` selects the data plane driving the three simulators:
    ``"batch"`` (vectorised kernels, the default) or ``"reference"`` (the
    per-event ``OrderedDict`` loop).  The result is bit-identical either way.
    ``policy`` (a :class:`repro.resilience.RetryPolicy`) hardens the up-front
    profile fan-out under the ``reference`` engine: per-task timeouts, bounded
    retries and an inline fallback instead of a hang when a worker dies.

    With ``checkpoint_dir`` the replay snapshots its full dynamic state every
    ``checkpoint_every`` completed epochs (atomic, checksummed, fingerprinted
    — see :mod:`repro.resilience.checkpoint`); a killed run restarted with
    ``resume=True`` continues from the latest snapshot and produces rows and
    summaries **bit-identical** to the uninterrupted run (asserted in
    ``tests/resilience/``).  ``resume=True`` with an empty or absent store
    simply runs from the start, so the flag is safe to pass unconditionally.
    """
    workers = check_workers(workers)
    if engine not in REPLAY_ENGINES:
        # Fail before the expensive up-front profiling, like OnlineJob does.
        raise ValueError(f"engine must be one of {REPLAY_ENGINES}, got {engine!r}")
    check_positive("checkpoint_every", checkpoint_every)
    checkpoint_every = int(checkpoint_every)
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True needs checkpoint_dir= naming the checkpoint store")
    composed = workload.composed
    items = composed.trace.accesses
    ids = composed.tenant_ids
    n = int(items.size)
    num_tenants = composed.num_tenants
    budget, unit = int(job.budget), int(job.unit)

    controller = ReallocationController(budget=budget, method=job.method, unit=unit, move_cost=job.move_cost)

    # Whole-trace (static) and per-phase (oracle) exact profiles — both are
    # method-independent inputs computed up front.
    with span("online.profiles", engine=engine):
        if engine == "reference":
            # The seed path: every profile re-processes its stream from scratch,
            # fanned over the pool.
            static_tasks = [(composed.tenant_trace(t), budget, unit) for t in range(num_tenants)]
            phase_tasks = [
                (workload.tenant_phase_trace(t, p), budget, unit)
                for p in range(workload.num_phases)
                for t in range(num_tenants)
            ]
            static_curves = pool_map(_exact_discretized, static_tasks, workers=workers, policy=policy)
            phase_curves = pool_map(_exact_discretized, phase_tasks, workers=workers, policy=policy)
            distance_arrays = None
        else:
            # The batch data plane: ONE distance pass per tenant yields the static
            # profiles (histogram of the whole array), the per-phase oracle
            # profiles (an access whose previous access predates the phase is
            # simply cold there — no re-processing), and then drives every lane.
            passes = TenantDistancePasses(items, ids, num_tenants)
            distance_arrays = passes.distances
            static_curves = [passes.whole_stream_curve(t, budget, unit) for t in range(num_tenants)]
            phase_curves = [
                passes.window_curve(t, workload.phase_slice(p), budget, unit)
                for p in range(workload.num_phases)
                for t in range(num_tenants)
            ]
    static_allocation = controller.propose(static_curves)
    oracle_allocations = []
    for p in range(workload.num_phases):
        oracle_allocations.append(controller.propose(phase_curves[p * num_tenants : (p + 1) * num_tenants]))

    lanes = LaneSet(
        engine,
        distance_arrays,
        {
            "static": static_allocation,
            "adaptive": _initial_split(num_tenants, budget, unit),
            "oracle": oracle_allocations[0],
        },
    )
    sketches = [
        WindowedShardsSketch(window=job.window, decay=job.decay, rate=job.rate, seed=job.profile_seed)
        for _ in range(num_tenants)
    ]
    detectors = []
    for _ in range(num_tenants):
        detectors.append(PhaseChangeDetector(threshold=job.threshold, hysteresis=job.hysteresis))

    # Stops are every epoch end plus every phase boundary (oracle resizes
    # there); chunks between stops are processed with batched sketch updates.
    stops, epoch_ends = replay_stops(n, job.epoch, workload.boundaries)

    fingerprint = replay_fingerprint(workload, job, engine) if checkpoint_dir is not None else None

    epochs: list[EpochStats] = []
    profiled_references = 0
    reallocations = 0
    phase_changes = 0
    profile_failures = 0
    epoch_index = 0
    epoch_start = 0
    position = 0
    phase = 0
    settling = False
    # Last-known-good windowed profile per tenant: an epoch whose extraction
    # fails for a tenant holds this instead of crashing the replay.
    held_profiles: list[tuple | None] = [None] * num_tenants
    counters = {"static": [0, 0], "adaptive": [0, 0], "oracle": [0, 0]}  # [hits, misses] this epoch

    if resume and latest_step(checkpoint_dir) is not None:
        # Checkpoints snapshot at epoch ends only, right after the counters
        # reset — so the epoch counters are implicitly zero and everything
        # deterministic (distance arrays, static/oracle profiles, the stop
        # schedule) was already recomputed above, identically.
        state = load_checkpoint(checkpoint_dir, fingerprint=fingerprint).state
        position = int(state["position"])
        phase = int(state["phase"])
        settling = bool(state["settling"])
        epoch_index = int(state["epoch_index"])
        epoch_start = int(state["epoch_start"])
        epochs = list(state["epochs"])
        profiled_references = int(state["profiled_references"])
        reallocations = int(state["reallocations"])
        phase_changes = int(state["phase_changes"])
        profile_failures = int(state["profile_failures"])
        held_profiles = list(state["held_profiles"])
        lanes.load_state_dict(state["lanes"])
        for sketch, sketch_state in zip(sketches, state["sketches"]):
            sketch.load_state_dict(sketch_state)
        for detector, detector_state in zip(detectors, state["detectors"]):
            detector.load_state_dict(detector_state)
        controller.evaluations = int(state["controller"]["evaluations"])
        controller.applications = int(state["controller"]["applications"])

    def run_chunk(start: int, end: int) -> None:
        """Feed events ``start .. end`` to all three simulators and the sketches."""
        chunk_items = items[start:end]
        chunk_ids = ids[start:end]
        lanes.advance(chunk_items, chunk_ids, counters)
        for t in range(num_tenants):
            tenant_items = chunk_items[chunk_ids == t]
            sketches[t].update(tenant_items)
            # Keep every sketch on the composed timeline: advancing past the
            # other tenants' events makes windows age in shared time, so a
            # tenant that goes quiet drains out of its own window.
            sketches[t].advance(int(chunk_items.size - tenant_items.size))

    with span("online.replay", engine=engine):
        for stop in stops:
            if stop <= position:  # already replayed before the resume point
                continue
            run_chunk(position, stop)
            position = stop
            if phase + 1 < workload.num_phases and position >= workload.boundaries[phase + 1]:
                phase += 1
                lanes.resize("oracle", oracle_allocations[phase])
            if position not in epoch_ends:
                continue

            # Epoch end: refresh windowed profiles, consult detector + controller.
            # The per-epoch extractions are tiny (the sampled window buffers), so
            # they run inline — forking a pool every epoch would cost more than
            # the two stack-distance passes it parallelises; `workers` fans only
            # the heavy up-front exact profiling above.
            snapshots = [sketch.snapshot() for sketch in sketches]
            profiled_references += sum(snap.sampled for snap in snapshots)
            profiles = []
            failed: set[int] = set()
            for t, snap in enumerate(snapshots):
                try:
                    _fire_fault("online.profile", t)
                    profile = _windowed_profile((snap, budget, unit))
                except Exception:
                    # Degrade, never crash: hold the tenant's last-known-good
                    # profile (idle demand before any succeeded) and skip the
                    # controller below so the allocation stays put this epoch.
                    failed.add(t)
                    profile = held_profiles[t] if held_profiles[t] is not None else (None, idle_curve(unit))
                else:
                    held_profiles[t] = profile
                profiles.append(profile)
            profile_failures += len(failed)
            window_curves = [discretized for _curve, discretized in profiles]
            distance = 0.0
            changed = False
            for t, (curve, _discretized) in enumerate(profiles):
                if curve is None or t in failed:
                    continue
                observation = detectors[t].observe(curve)
                distance = max(distance, observation.distance)
                changed = changed or observation.changed
            if changed:
                phase_changes += 1
            # The controller is consulted on a phase-change flag, on the fixed
            # re-allocation cadence, or while *settling* — refining after a flag
            # or an applied move, when the window is still absorbing the new
            # regime.  Quiet unflagged epochs between cadence points never
            # re-partition, so threshold/hysteresis genuinely gate churn.
            applied = False
            moved_blocks = 0
            predicted_gain = 0.0
            move_penalty = 0.0
            if not failed and (changed or settling or epoch_index % job.realloc_epochs == 0):
                decision = controller.decide(
                    window_curves,
                    lanes.capacities("adaptive"),
                    horizon=job.epoch * job.horizon_epochs,
                )
                predicted_gain = decision.predicted_gain
                move_penalty = decision.penalty
                if decision.applied:
                    lanes.resize("adaptive", decision.allocation)
                    reallocations += 1
                    applied = True
                    moved_blocks = decision.moved_blocks
                settling = applied or changed

            total = position - epoch_start
            # Label the epoch with the phase of its *last event*: when an epoch
            # ends exactly on a boundary, `phase` has already advanced to the
            # next regime even though every recorded event belongs to the old one.
            last_event_phase = phase_of_last_event(workload.boundaries, position)
            epochs.append(
                EpochStats(
                    index=epoch_index,
                    start=epoch_start,
                    end=position,
                    phase=last_event_phase,
                    static_miss_ratio=counters["static"][1] / total,
                    adaptive_miss_ratio=counters["adaptive"][1] / total,
                    oracle_miss_ratio=counters["oracle"][1] / total,
                    distance=distance,
                    phase_change=changed,
                    reallocated=applied,
                    moved_blocks=moved_blocks,
                    adaptive_allocation=lanes.capacities("adaptive"),
                )
            )
            registry = get_registry()
            if registry.enabled:
                # The per-epoch time series mirrors EpochStats.row() plus the
                # controller's pricing of the epoch's decision and the sketch
                # sample volume — purely observational, never read back.
                registry.series("online.epochs").record(
                    epoch=epoch_index,
                    start=epoch_start,
                    end=position,
                    phase=last_event_phase,
                    static=counters["static"][1] / total,
                    adaptive=counters["adaptive"][1] / total,
                    oracle=counters["oracle"][1] / total,
                    distance=distance,
                    phase_change=changed,
                    reallocated=applied,
                    moved_blocks=moved_blocks,
                    allocation="/".join(str(c) for c in lanes.capacities("adaptive")),
                    sketch_sampled=sum(snap.sampled for snap in snapshots),
                    gain=predicted_gain,
                    penalty=move_penalty,
                    profile_failures=len(failed),
                )
                if changed:
                    registry.counter("online.phase_changes").inc()
                if applied:
                    registry.counter("online.reallocations").inc()
                    registry.counter("online.moved_blocks").add(moved_blocks)

            epoch_index += 1
            epoch_start = position
            for key in counters:
                counters[key] = [0, 0]

            if checkpoint_dir is not None and epoch_index % checkpoint_every == 0:
                with span("online.checkpoint", engine=engine):
                    state = {
                        "position": position,
                        "phase": phase,
                        "settling": settling,
                        "epoch_index": epoch_index,
                        "epoch_start": epoch_start,
                        "epochs": list(epochs),
                        "profiled_references": profiled_references,
                        "reallocations": reallocations,
                        "phase_changes": phase_changes,
                        "profile_failures": profile_failures,
                        "held_profiles": list(held_profiles),
                        "lanes": lanes.state_dict(),
                        "sketches": [sketch.state_dict() for sketch in sketches],
                        "detectors": [detector.state_dict() for detector in detectors],
                        "controller": {
                            "evaluations": controller.evaluations,
                            "applications": controller.applications,
                        },
                    }
                    write_checkpoint(checkpoint_dir, epoch_index, state, fingerprint=fingerprint, command="online")
                _fire_fault("online.checkpoint", epoch_index)

    registry = get_registry()
    registry.counter("online.events", engine=engine).add(n)
    registry.counter("online.profiled_references").add(profiled_references)
    registry.gauge("online.tenants").set(num_tenants)
    return ReplayResult(
        name=job.name,
        accesses=n,
        tenants=composed.names,
        budget=budget,
        epochs=tuple(epochs),
        static_miss_ratio=lanes.miss_ratio("static"),
        adaptive_miss_ratio=lanes.miss_ratio("adaptive"),
        oracle_miss_ratio=lanes.miss_ratio("oracle"),
        static_allocation=tuple(static_allocation),
        final_allocation=lanes.capacities("adaptive"),
        reallocations=reallocations,
        phase_changes=phase_changes,
        profiled_references=profiled_references,
        oracle_allocations=tuple(tuple(a) for a in oracle_allocations),
        profile_failures=profile_failures,
    )
