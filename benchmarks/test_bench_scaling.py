"""Algorithmic scaling — Algorithm 1 (O(m log m)) and ChainFind (O(m³)).

Section V argues ChainFind runs in ``O(m³)`` time and that the reuse-distance
algorithm is cheap enough to run inside a JIT.  This benchmark times both
kernels across a size sweep and additionally compares the Fenwick-tree
inversion counter against the naive quadratic oracle, and the Olken
stack-distance algorithm against per-size LRU simulation — the classic
trace-tool trade-off.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table, write_csv
from repro.cache import mrc_by_simulation, mrc_from_trace
from repro.core import (
    chain_find,
    count_inversions_fenwick,
    count_inversions_naive,
    Permutation,
    max_inversions,
    random_permutation,
)
from repro.trace import zipfian_trace


@pytest.mark.parametrize("m", [256, 1024, 4096])
def test_reuse_distance_kernel_scaling(benchmark, m):
    from repro.core import stack_distances as periodic_stack_distances

    sigma = random_permutation(m, rng=m)
    result = benchmark(periodic_stack_distances, sigma)
    assert len(result) == m
    assert int(result.max()) <= m


@pytest.mark.parametrize("m", [8, 12, 16, 20])
def test_chainfind_scaling(benchmark, m):
    result = benchmark(chain_find, Permutation.identity(m))
    assert result.length == max_inversions(m)
    assert result.end.is_reverse()


def test_inversion_counting_fenwick_vs_naive(benchmark, results_dir):
    rng = np.random.default_rng(0)
    rows = []
    for m in (256, 1024, 4096):
        word = rng.permutation(m)
        import time

        t0 = time.perf_counter()
        naive = count_inversions_naive(word)
        t_naive = time.perf_counter() - t0
        t0 = time.perf_counter()
        fast = count_inversions_fenwick(word)
        t_fenwick = time.perf_counter() - t0
        assert naive == fast
        rows.append({"m": m, "naive_s": t_naive, "fenwick_s": t_fenwick, "speedup": t_naive / max(t_fenwick, 1e-9)})
    benchmark(count_inversions_fenwick, rng.permutation(4096))
    print()
    print(format_table(rows, title="Inversion counting: naive O(m^2) vs Fenwick O(m log m)"))
    write_csv(results_dir / "scaling_inversions.csv", rows)


def test_mrc_single_pass_vs_per_size_simulation(benchmark, results_dir):
    trace = zipfian_trace(20_000, 512, rng=1).accesses
    curve = benchmark(mrc_from_trace, trace)
    sampled = mrc_by_simulation(trace, [1, 64, 256, 512])
    for c, ratio in sampled.items():
        assert curve[c] == pytest.approx(ratio)
    rows = [{"cache_size": c, "miss_ratio": curve[c]} for c in (1, 16, 64, 256, 512)]
    print()
    title = "Single-pass MRC of a 20k-access Zipfian trace (validated against per-size simulation)"
    print(format_table(rows, title=title))
    write_csv(results_dir / "scaling_mrc.csv", rows)
