"""The common job/result protocol shared by every experiment type.

The four public experiment types — profile, sweep, partition, online — each
declare a frozen job dataclass and return a frozen result dataclass.  Before
the engine layer existed those four had drifted apart: every ``__post_init__``
re-implemented its own positive-integer / fraction / choice checks with its
own error wording, and the results disagreed about whether they could render
rows or a summary.  This module pins the contract:

* :class:`ExperimentJob` / :class:`ExperimentResult` are the structural
  protocols the :mod:`repro.api` facade programs against — a job carries
  ``name`` and ``seed``, a result renders ``rows()`` (flat dictionaries for
  tables/CSV) and ``summary()`` (one aggregate scoreboard row).
* the ``check_*`` validators give every job the same failure wording for the
  same mistake, so the CLI and the facade surface one error language.

Validators raise ``ValueError`` with the field name in the message — jobs
stay fail-fast (bad knobs are rejected before any expensive profiling runs).
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

__all__ = [
    "ALLOC_METHODS",
    "PROFILE_MODES",
    "ExperimentJob",
    "ExperimentResult",
    "check_choice",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_unit",
]

#: Allocation methods understood by every allocating experiment
#: (partition and online replay share one allocator registry).
ALLOC_METHODS: tuple[str, ...] = ("greedy", "dp", "hull")

#: Per-tenant MRC profiling modes (see :mod:`repro.profiling`).
PROFILE_MODES: tuple[str, ...] = ("exact", "shards", "reuse")


@runtime_checkable
class ExperimentJob(Protocol):
    """Structural protocol of one experiment specification.

    Every job is a frozen, picklable dataclass carrying at least a ``name``
    (labels tables and CSV rows).  Jobs with deterministic randomness call
    the knob ``seed`` (interleaving, sampling hashes), never ``rng`` or
    ``random_state``; granularities are ``unit``.  Validation happens in
    ``__post_init__`` via the ``check_*`` helpers of this module, so
    constructing a job with bad knobs fails immediately.
    """

    name: str


@runtime_checkable
class ExperimentResult(Protocol):
    """Structural protocol of one experiment outcome.

    ``rows()`` yields flat dictionaries (one per measured entity: capacity
    point, tenant, epoch) for tables and CSV export; ``summary()`` is the
    one-line aggregate scoreboard.  The :mod:`repro.api` facade's CSV export
    writes ``rows()`` and, for result types with a meaningful aggregate, a
    ``TOTAL`` row derived from ``summary()``.
    """

    def rows(self) -> list[dict]:
        """Flat per-entity dictionaries for tables and CSV export."""
        ...  # pragma: no cover - protocol

    def summary(self) -> dict:
        """One aggregate scoreboard row."""
        ...  # pragma: no cover - protocol


def check_positive(name: str, value: Any) -> int:
    """Validate an integer knob that must be >= 1; returns the coerced int."""
    value = int(value)
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return value


def check_non_negative(name: str, value: Any) -> float:
    """Validate a float knob that must be >= 0; returns the coerced float."""
    value = float(value)
    if value < 0.0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_fraction(name: str, value: Any) -> float:
    """Validate a float knob that must lie in ``(0, 1]``; returns the float."""
    value = float(value)
    if not 0.0 < value <= 1.0:
        raise ValueError(f"{name} must be in (0, 1], got {value}")
    return value


def check_choice(name: str, value: Any, choices: tuple) -> Any:
    """Validate an enumerated knob against its allowed values."""
    if value not in choices:
        raise ValueError(f"{name} must be one of {choices}, got {value!r}")
    return value


def check_unit(unit: Any, budget: Any) -> int:
    """Validate an allocation granularity against the budget it divides."""
    unit = check_positive("unit", unit)
    if unit > int(budget):
        raise ValueError(f"unit ({unit}) cannot exceed the budget ({int(budget)})")
    return unit
