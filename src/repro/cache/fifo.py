"""Fully-associative FIFO cache.

FIFO evicts the item that has been resident longest regardless of how recently
it was used.  It is included as a baseline for the policy-sensitivity ablation:
the paper's locality ordering is derived for LRU, and FIFO shows how much of
the ordering survives under a recency-blind policy.
"""

from __future__ import annotations

from collections import OrderedDict

from .base import CacheModel

__all__ = ["FIFOCache"]


class FIFOCache(CacheModel):
    """Fully-associative cache with first-in-first-out replacement."""

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._entries: OrderedDict[int, None] = OrderedDict()

    @property
    def name(self) -> str:
        """Policy name used in reports."""
        return "fifo"

    def access(self, item: int) -> bool:
        """Access one item; return ``True`` on a hit."""
        entries = self._entries
        if item in entries:
            return True  # no recency update: insertion order is preserved
        if len(entries) >= self.capacity:
            entries.popitem(last=False)
            self.stats.evictions += 1
        entries[item] = None
        return False

    def contents(self) -> set[int]:
        """The set of items currently cached."""
        return set(self._entries)

    def _reset_state(self) -> None:
        self._entries = OrderedDict()
