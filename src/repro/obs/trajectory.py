"""Perf trajectory: structured benchmark records and baseline comparison.

The benchmark suite appends its headline numbers here as uniform records —
``{benchmark, metric, value, unit, labels, quick, direction}`` — into one
``perf_trajectory.jsonl`` under ``benchmarks/results/``, replacing per-bench
ad-hoc JSON as the tracked perf history.  :func:`compare_to_baseline` then
turns that file plus a committed baseline into a regression report: a metric
that moved more than ``tolerance`` (default 30%) in its *bad* direction
(``direction``: ``"higher_is_better"`` or ``"lower_is_better"``) is flagged.
CI runs the comparison as a warn-only step via ``repro metrics --baseline``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

__all__ = ["PerfRecord", "record_perf", "load_perf", "compare_to_baseline"]


@dataclass(frozen=True)
class PerfRecord:
    """One benchmark measurement in the perf trajectory."""

    benchmark: str
    metric: str
    value: float
    unit: str = ""
    labels: tuple[tuple[str, str], ...] = ()
    quick: bool = False
    direction: str = "higher_is_better"

    def key(self) -> tuple[str, str, tuple[tuple[str, str], ...]]:
        """Identity of the measurement (benchmark, metric, labels)."""
        return (self.benchmark, self.metric, self.labels)

    def to_record(self) -> dict[str, object]:
        """The JSONL line form."""
        return {
            "benchmark": self.benchmark,
            "metric": self.metric,
            "value": self.value,
            "unit": self.unit,
            "labels": dict(self.labels),
            "quick": self.quick,
            "direction": self.direction,
        }


def _from_record(record: dict[str, object]) -> PerfRecord:
    labels = record.get("labels") or {}
    assert isinstance(labels, dict)
    return PerfRecord(
        benchmark=str(record["benchmark"]),
        metric=str(record["metric"]),
        value=float(record["value"]),  # type: ignore[arg-type]
        unit=str(record.get("unit", "")),
        labels=tuple(sorted((str(k), str(v)) for k, v in labels.items())),
        quick=bool(record.get("quick", False)),
        direction=str(record.get("direction", "higher_is_better")),
    )


def load_perf(path: str | Path) -> list[PerfRecord]:
    """Load perf records from a trajectory file (missing file → empty).

    Accepts the canonical JSONL form as well as a plain JSON array (the
    committed-baseline format); lines/entries that are not perf records —
    e.g. the typed metric records sharing a mixed JSONL file — are skipped.
    """
    path = Path(path)
    if not path.exists():
        return []
    text = path.read_text(encoding="utf-8")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        payload = None
    if isinstance(payload, list):
        raw = payload
    elif isinstance(payload, dict):
        raw = [payload]
    else:
        raw = [json.loads(line) for line in text.splitlines() if line.strip()]
    return [_from_record(r) for r in raw if isinstance(r, dict) and "benchmark" in r]


def record_perf(
    path: str | Path,
    benchmark: str,
    metric: str,
    value: float,
    *,
    unit: str = "",
    quick: bool = False,
    direction: str = "higher_is_better",
    **labels: object,
) -> PerfRecord:
    """Record one measurement, replacing any previous record with the same key.

    Load-replace-rewrite keeps the file deterministic (sorted by key, one
    record per key) however many times a bench session reruns.
    """
    if direction not in ("higher_is_better", "lower_is_better"):
        raise ValueError(f"direction must be higher_is_better or lower_is_better, got {direction!r}")
    record = PerfRecord(
        benchmark=benchmark,
        metric=metric,
        value=float(value),
        unit=unit,
        labels=tuple(sorted((str(k), str(v)) for k, v in labels.items())),
        quick=quick,
        direction=direction,
    )
    path = Path(path)
    existing = {r.key(): r for r in load_perf(path)}
    existing[record.key()] = record
    path.parent.mkdir(parents=True, exist_ok=True)
    ordered = sorted(existing.values(), key=lambda r: r.key())
    path.write_text("\n".join(json.dumps(r.to_record(), sort_keys=True) for r in ordered) + "\n", encoding="utf-8")
    return record


def compare_to_baseline(
    current: list[PerfRecord],
    baseline: list[PerfRecord],
    *,
    tolerance: float = 0.30,
) -> list[str]:
    """Direction-aware regression report of ``current`` against ``baseline``.

    Returns one warning line per metric that regressed more than
    ``tolerance`` (fractional) in its bad direction; improvements and
    metrics absent from either side are never flagged.
    """
    if not 0 <= tolerance:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    warnings = []
    current_by_key = {r.key(): r for r in current}
    for base in baseline:
        now = current_by_key.get(base.key())
        if now is None or base.value == 0:
            continue
        change = (now.value - base.value) / abs(base.value)
        regressed = change < -tolerance if base.direction == "higher_is_better" else change > tolerance
        if regressed:
            label_text = "".join(f" {k}={v}" for k, v in base.labels)
            warnings.append(
                f"PERF REGRESSION: {base.benchmark}/{base.metric}{label_text} "
                f"{base.value:.6g} -> {now.value:.6g} ({change:+.1%}, tolerance ±{tolerance:.0%})"
            )
    return warnings
