"""Batch partitioned-LRU simulation: whole segments per kernel call.

The online replay engine (:mod:`repro.online.replay`) measures three
partitioned LRU systems at once.  Its reference simulator
(:class:`repro.online.replay.PartitionedLRU`) steps one ``OrderedDict`` per
tenant one reference at a time — correct, readable, and the dominant cost of
a replay once profiling is vectorised.  This module is the batch data plane
that replaces it on the hot path.

The kernel rests on one invariant of a *resizable* LRU partition: at every
instant the resident blocks are exactly the top-``L`` items of the tenant's
recency stack, where ``L`` is the partition's current occupancy.  Every
operation of the reference simulator preserves it — a hit moves the item to
the stack top (set unchanged), a miss inserts at the top (evicting the rank
``L`` item when full), and a shrink :meth:`~repro.online.replay.PartitionedLRU.resize`
evicts from the least-recent end, which is precisely a truncation of the
stack to the new capacity.  An access therefore hits **iff its stack
distance is at most the current occupancy**, and the occupancy itself
follows a tiny recursion: it grows by one per miss until it reaches the
capacity, and is clamped to the capacity at a shrink.  Stack distances do
not depend on the capacity schedule at all, so one distance pass per tenant
(:class:`~repro.cache.stack_distance.StackDistanceStream`) serves every lane
— static, adaptive, and oracle — simultaneously.

* :func:`partitioned_lru_segment` — misses and final occupancy of one
  tenant's partition over one segment of pre-computed distances, bit-identical
  to the per-event reference (asserted in ``tests/test_differential.py``).
* :class:`BatchPartitionedLRU` — the multi-tenant wrapper with the same
  ``resize`` / ``capacities`` / ``miss_ratio`` surface as the reference, but
  advancing a whole segment per call.
* :func:`replay_partitioned` — a bounded-memory streaming replay: segments
  in, hit/miss totals out; pairs with :mod:`repro.trace.streaming` to replay
  ``numpy.memmap``-backed traces of ``10^7+`` references.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from ..engine.columnar import TenantDistanceStreams as _TenantDistanceStreams
from ..obs import get_registry, span

__all__ = ["partitioned_lru_segment", "BatchPartitionedLRU", "replay_partitioned"]

#: Names that moved into :mod:`repro.engine.columnar`; kept importable here
#: through a deprecation shim (see ``__getattr__`` below).
_MOVED_TO_ENGINE = ("TenantDistanceStreams", "PrecomputedTenantDistances")


def partitioned_lru_segment(distances: np.ndarray, capacity: int, occupancy: int = 0) -> tuple[int, int]:
    """Misses and final occupancy of one LRU partition over one segment.

    ``distances`` are the segment's stack distances measured over the
    tenant's whole access stream (:data:`~repro.cache.stack_distance.COLD`
    for cold accesses); ``capacity`` is the partition size in blocks and
    ``occupancy`` the number of resident blocks at segment start (at most
    ``capacity`` — a shrink clamps occupancy *before* the segment runs, which
    is exactly the reference simulator's eviction of its least-recent
    blocks).  Returns ``(misses, occupancy_after)``.

    An access hits iff its distance is at most the current occupancy; a miss
    grows the occupancy until the partition is full.  A partition that is
    already full is a single vectorised comparison against the capacity; the
    warm-up phase (cold start or after a grow) walks only the *candidates* —
    accesses deeper than the starting occupancy, extracted vectorised —
    because anything shallower can never miss while the occupancy only grows.
    """
    d = np.asarray(distances)
    capacity = int(capacity)
    occupancy = int(occupancy)
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")
    if not 0 <= occupancy <= max(capacity, 0):
        raise ValueError(f"occupancy must be within [0, capacity], got {occupancy} for capacity {capacity}")
    n = int(d.size)
    if n == 0:
        return 0, occupancy
    if capacity == 0:
        return n, 0
    if occupancy >= capacity:
        return int(np.count_nonzero(d > capacity)), capacity

    # Warm-up: occupancy < capacity.  Plain Python ints over the (usually
    # short) candidate list beat per-step NumPy dispatch by a wide margin.
    candidates = np.flatnonzero(d > occupancy)
    misses = 0
    level = occupancy
    for index, value in enumerate(d[candidates].tolist()):
        if value <= level:
            continue
        misses += 1
        level += 1
        if level == capacity:
            # Full from the access after the last warm-up miss onwards.
            tail = d[int(candidates[index]) + 1 :]
            return misses + int(np.count_nonzero(tail > capacity)), capacity
    return misses, level  # the partition never filled up


class BatchPartitionedLRU:
    """Per-tenant LRU partitions advanced a whole segment per call.

    The batch twin of :class:`repro.online.replay.PartitionedLRU`: same
    constructor, same ``resize`` semantics (a shrink evicts least-recent
    blocks — here, an occupancy clamp), same ``hits`` / ``misses`` /
    ``miss_ratio`` accounting, but driven by per-tenant stack-distance
    segments (:class:`TenantDistanceStreams`) instead of single references.
    Bit-identical to the reference on every schedule of segments and resizes
    (asserted in ``tests/test_differential.py``).
    """

    def __init__(self, capacities: Sequence[int]):
        self._capacities = [int(c) for c in capacities]
        if any(c < 0 for c in self._capacities):
            raise ValueError("partition capacities must be >= 0")
        self._occupancies = [0] * len(self._capacities)
        self.hits = 0
        self.misses = 0
        # Bound once: run_segment is the replay hot path (three lanes per
        # chunk), so the per-segment cost of disabled metrics is one no-op
        # method call instead of a registry lookup.
        self._lane_refs = get_registry().counter("replay.lane_refs")

    @property
    def capacities(self) -> tuple[int, ...]:
        """Current per-tenant partition sizes in blocks."""
        return tuple(self._capacities)

    @property
    def occupancies(self) -> tuple[int, ...]:
        """Resident blocks per tenant (mirrors the reference's entry counts)."""
        return tuple(self._occupancies)

    def run_segment(self, distances: Sequence[np.ndarray]) -> tuple[int, int]:
        """Advance every tenant by one segment of stack distances.

        ``distances[t]`` holds tenant ``t``'s distances for the segment (an
        empty array for a tenant with no traffic).  Returns the segment's
        ``(hits, misses)`` summed over tenants and folds them into the
        running totals.
        """
        if len(distances) != len(self._capacities):
            raise ValueError(f"got {len(distances)} distance arrays for {len(self._capacities)} partitions")
        segment_hits = 0
        segment_misses = 0
        for tenant, tenant_distances in enumerate(distances):
            misses, occupancy = partitioned_lru_segment(
                tenant_distances, self._capacities[tenant], self._occupancies[tenant]
            )
            self._occupancies[tenant] = occupancy
            segment_misses += misses
            segment_hits += int(np.asarray(tenant_distances).size) - misses
        self.hits += segment_hits
        self.misses += segment_misses
        self._lane_refs.add(segment_hits + segment_misses)
        return segment_hits, segment_misses

    def resize(self, capacities: Sequence[int]) -> None:
        """Apply a new split; shrunk partitions clamp their occupancy now."""
        capacities = [int(c) for c in capacities]
        if len(capacities) != len(self._capacities):
            raise ValueError(f"got {len(capacities)} capacities for {len(self._capacities)} partitions")
        if any(c < 0 for c in capacities):
            raise ValueError("partition capacities must be >= 0")
        self._occupancies = [min(occ, cap) for occ, cap in zip(self._occupancies, capacities)]
        self._capacities = capacities

    @property
    def miss_ratio(self) -> float:
        """Miss ratio over everything accessed so far (0 when nothing was)."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def state_dict(self) -> dict:
        """Picklable snapshot: capacities, occupancies and hit/miss totals."""
        return {
            "capacities": list(self._capacities),
            "occupancies": list(self._occupancies),
            "hits": int(self.hits),
            "misses": int(self.misses),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        capacities = [int(c) for c in state["capacities"]]
        occupancies = [int(o) for o in state["occupancies"]]
        if len(occupancies) != len(capacities):
            raise ValueError(f"state holds {len(occupancies)} occupancies for {len(capacities)} capacities")
        if any(not 0 <= occ <= cap for occ, cap in zip(occupancies, capacities)):
            raise ValueError("state occupancies must lie within their capacities")
        self._capacities = capacities
        self._occupancies = occupancies
        self.hits = int(state["hits"])
        self.misses = int(state["misses"])


def replay_partitioned(
    segments: Iterable[tuple[np.ndarray, np.ndarray]],
    capacities: Sequence[int],
) -> BatchPartitionedLRU:
    """Replay a segmented multi-tenant trace through one fixed partition split.

    ``segments`` yields ``(items, tenant_ids)`` pairs — for example
    :meth:`repro.trace.streaming.StreamingTrace.segments` — and only one
    segment (plus ``O(footprint)`` carried state) is ever resident, so a
    ``numpy.memmap``-backed trace of ``10^7+`` references replays in bounded
    memory (asserted in ``benchmarks/test_bench_replay.py``).  Returns the
    finished :class:`BatchPartitionedLRU` with its hit/miss totals.
    """
    simulator = BatchPartitionedLRU(capacities)
    streams = _TenantDistanceStreams(len(simulator.capacities))
    registry = get_registry()
    with span("replay.partitioned"):
        for items, tenant_ids in segments:
            simulator.run_segment(streams.feed(items, tenant_ids))
            registry.counter("replay.segments").inc()
    registry.counter("replay.events").add(simulator.hits + simulator.misses)
    return simulator


def __getattr__(name: str):
    """Forward the distance providers that moved to :mod:`repro.engine.columnar`."""
    if name in _MOVED_TO_ENGINE:
        import warnings

        from ..engine import columnar

        warnings.warn(
            f"repro.sim.partitioned.{name} moved to repro.engine.columnar.{name}; "
            "the repro.sim.partitioned alias will be removed in a future release",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(columnar, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
