"""Unit tests for repro.core.hits — Algorithm 1 and Theorems 1-3."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import LRUCache
from repro.core import (
    Permutation,
    algorithm1_paper,
    all_permutations,
    cache_hit_vector,
    corollary1_deficit,
    covers,
    hits,
    locality_profile,
    max_inversions,
    miss_ratio,
    miss_ratio_curve,
    random_permutation,
    reuse_distance_histogram,
    reuse_distances,
    stack_distances,
    theorem2_deficit,
    theorem3_compare,
    total_reuse,
)
from repro.trace import PeriodicTrace


class TestReuseDistances:
    def test_sawtooth4_paper_example(self):
        # a b c d d c b a: reuse distances 0, 1, 2, 3 reading the re-traversal
        saw = Permutation.reverse(4)
        assert reuse_distances(saw).tolist() == [0, 1, 2, 3]
        assert stack_distances(saw).tolist() == [1, 2, 3, 4]

    def test_cyclic_all_maximal(self):
        cyc = Permutation.identity(5)
        assert reuse_distances(cyc).tolist() == [4] * 5
        assert stack_distances(cyc).tolist() == [5] * 5

    def test_abccba_example_from_definition5(self):
        # trace a b c | c b a: the re-traversal is the sawtooth of 3 items;
        # the paper notes the first access of a has reuse *distance* 3 counting
        # inclusively (its stack distance); the distinct-items-between count is 2.
        saw = Permutation.reverse(3)
        assert stack_distances(saw).tolist() == [1, 2, 3]
        assert reuse_distances(saw).tolist() == [0, 1, 2]

    def test_accepts_raw_sequences(self):
        assert reuse_distances([1, 0, 2, 3]).tolist() == reuse_distances(Permutation([1, 0, 2, 3])).tolist()

    def test_empty(self):
        assert reuse_distances(Permutation([])).size == 0
        assert cache_hit_vector(Permutation([])).size == 0

    def test_matches_direct_count(self, rng):
        # brute force: count distinct items strictly between the two accesses
        for _ in range(10):
            sigma = random_permutation(12, rng)
            trace = PeriodicTrace(sigma).to_trace().accesses
            rd = reuse_distances(sigma)
            for pos_b in range(12):
                item = trace[12 + pos_b]
                first = int(np.where(trace[:12] == item)[0][0])
                between = trace[first + 1 : 12 + pos_b]
                assert rd[pos_b] == len(set(between.tolist()))


class TestAlgorithm1:
    def test_histogram_sums_to_m(self, s5):
        for sigma in s5:
            assert int(reuse_distance_histogram(sigma).sum()) == 5

    def test_hit_vector_is_cumsum_of_histogram(self, s5):
        for sigma in s5:
            assert np.array_equal(cache_hit_vector(sigma), np.cumsum(reuse_distance_histogram(sigma)))

    def test_paper_pseudocode_matches_vectorised(self, s5):
        for sigma in s5:
            rdh, chv = algorithm1_paper(sigma)
            assert np.array_equal(rdh, reuse_distance_histogram(sigma))
            assert np.array_equal(chv, cache_hit_vector(sigma))

    def test_paper_worked_example(self):
        # sigma(A) = 2 1 3 4 (1-indexed): first increment lands at index 3
        sigma = Permutation.from_one_indexed([2, 1, 3, 4])
        rdh, chv = algorithm1_paper(sigma)
        assert rdh.tolist() == [0, 0, 1, 3]
        assert chv.tolist() == [0, 0, 1, 4]

    def test_sawtooth4_hit_vector(self):
        assert cache_hit_vector(Permutation.reverse(4)).tolist() == [1, 2, 3, 4]

    def test_cyclic_hit_vector(self):
        assert cache_hit_vector(Permutation.identity(4)).tolist() == [0, 0, 0, 4]

    def test_hit_vector_monotone_and_ends_at_m(self, s5):
        for sigma in s5:
            vec = cache_hit_vector(sigma)
            assert np.all(np.diff(vec) >= 0)
            assert vec[-1] == 5


class TestAgainstLRUSimulation:
    @pytest.mark.parametrize("m", [1, 2, 3, 5, 8, 13])
    def test_closed_form_equals_simulation(self, m, rng):
        sigma = random_permutation(m, rng)
        trace = PeriodicTrace(sigma).to_trace()
        vec = cache_hit_vector(sigma)
        for c in range(1, m + 1):
            cache = LRUCache(c)
            stats = cache.run(trace)
            assert stats.hits == int(vec[c - 1])

    def test_every_s4_permutation_against_simulation(self, s4):
        for sigma in s4:
            trace = PeriodicTrace(sigma).to_trace()
            vec = cache_hit_vector(sigma)
            for c in range(1, 5):
                assert LRUCache(c).run(trace).hits == int(vec[c - 1])


class TestTheorems:
    def test_theorem2_small_groups(self):
        for m in range(1, 7):
            for sigma in all_permutations(m):
                assert theorem2_deficit(sigma) == 0

    def test_corollary1_small_groups(self):
        for m in range(1, 7):
            for sigma in all_permutations(m):
                assert corollary1_deficit(sigma) == 0

    def test_theorems_random_large(self, rng):
        for m in (50, 200, 1000):
            sigma = random_permutation(m, rng)
            assert theorem2_deficit(sigma) == 0
            assert corollary1_deficit(sigma) == 0

    def test_theorem2_aggregate_form_on_all_covering_pairs(self, s4):
        # For every Bruhat cover the truncated hit-vector sum grows by exactly
        # one (the consequence of Theorem 2 that the paper's Theorem 3 proof
        # actually establishes).
        for sigma in s4:
            for tau in covers(sigma):
                report = theorem3_compare(sigma, tau)
                assert report["hit_gain"] == 1
                assert len(report["improved_sizes"]) >= 1

    def test_theorem3_holds_for_adjacent_covers(self, s5):
        # The pointwise-dominance statement is true when the covering step is
        # an adjacent transposition (weak-order cover): exactly one stack
        # distance shrinks by one.
        from repro.core import weak_covers

        for sigma in s5:
            for tau in weak_covers(sigma):
                report = theorem3_compare(sigma, tau)
                assert report["dominates"]
                assert report["improved_sizes"] and len(report["improved_sizes"]) == 1
                assert report["hit_gain"] == 1

    def test_theorem3_counterexample_for_nonadjacent_cover(self):
        # Reproduction finding: Theorem 3 as stated fails for the Bruhat cover
        # (2,1,4,3) -> (4,1,2,3); see DESIGN.md.
        sigma = Permutation.from_one_indexed([2, 1, 4, 3])
        tau = Permutation.from_one_indexed([4, 1, 2, 3])
        from repro.core import is_covering

        assert is_covering(sigma, tau)
        report = theorem3_compare(sigma, tau)
        assert not report["dominates"]
        assert report["hit_gain"] == 1
        assert cache_hit_vector(sigma).tolist() == [0, 0, 2, 4]
        assert cache_hit_vector(tau).tolist() == [1, 1, 1, 4]

    def test_theorem3_requires_same_size(self):
        with pytest.raises(ValueError):
            theorem3_compare(Permutation.identity(3), Permutation.identity(4))


class TestMissRatios:
    def test_hits_function(self):
        saw = Permutation.reverse(4)
        assert hits(saw, 0) == 0
        assert hits(saw, 2) == 2
        assert hits(saw, 100) == 4

    def test_miss_ratio_conventions(self):
        saw = Permutation.reverse(4)
        assert miss_ratio(saw, 4, convention="full") == pytest.approx(0.5)
        assert miss_ratio(saw, 4, convention="retraversal") == pytest.approx(0.0)
        assert miss_ratio(Permutation.identity(4), 3, convention="retraversal") == pytest.approx(1.0)

    def test_miss_ratio_invalid_convention(self):
        with pytest.raises(ValueError):
            miss_ratio(Permutation.identity(3), 1, convention="bogus")
        with pytest.raises(ValueError):
            miss_ratio_curve(Permutation.identity(3), convention="bogus")

    def test_miss_ratio_curve_monotone_nonincreasing(self, s5):
        for sigma in s5:
            curve = miss_ratio_curve(sigma)
            assert np.all(np.diff(curve) <= 1e-12)

    def test_miss_ratio_curve_max_cache_size(self):
        curve = miss_ratio_curve(Permutation.reverse(6), max_cache_size=3)
        assert curve.size == 3

    def test_miss_ratio_curve_empty_raises(self):
        with pytest.raises(ValueError):
            miss_ratio_curve(Permutation([]))

    def test_weak_order_implies_pointwise_mrc_dominance(self, s4):
        # Pointwise MRC dominance follows the *weak* order (chains of adjacent
        # swaps); it does not hold for every Bruhat-comparable pair (see the
        # Theorem 3 counterexample above).
        from repro.core import weak_order_leq

        for sigma in s4:
            for tau in s4:
                if weak_order_leq(sigma, tau):
                    assert np.all(miss_ratio_curve(tau) <= miss_ratio_curve(sigma) + 1e-12)

    def test_average_mrc_still_ordered_by_inversion_level(self, s5):
        # The Figure 1 aggregate claim survives: averaging curves within an
        # inversion level produces a family ordered by the level.
        from repro.cache import average_curves

        by_level: dict[int, list[np.ndarray]] = {}
        for sigma in s5:
            by_level.setdefault(sigma.inversions(), []).append(miss_ratio_curve(sigma))
        levels = sorted(by_level)
        averages = [average_curves(by_level[k]) for k in levels]
        for lower, higher in zip(averages, averages[1:]):
            assert np.all(higher <= lower + 1e-12)


class TestTotalReuseAndProfile:
    def test_total_reuse_extremes(self):
        assert total_reuse(Permutation.identity(6)) == 36
        assert total_reuse(Permutation.reverse(6)) == 21

    def test_total_reuse_equals_sum_of_stack_distances(self, s5):
        for sigma in s5:
            assert total_reuse(sigma) == int(stack_distances(sigma).sum())

    def test_locality_profile_consistency(self, rng):
        sigma = random_permutation(9, rng)
        profile = locality_profile(sigma)
        assert profile.size == 9
        assert profile.inversions == sigma.inversions()
        assert profile.hit_vector == tuple(int(x) for x in cache_hit_vector(sigma))
        assert profile.total_reuse == total_reuse(sigma)
        assert 0.0 <= profile.normalized_locality() <= 1.0

    def test_normalized_locality_extremes(self):
        assert locality_profile(Permutation.identity(7)).normalized_locality() == 0.0
        assert locality_profile(Permutation.reverse(7)).normalized_locality() == 1.0

    def test_profile_mrc_conventions_related(self, rng):
        sigma = random_permutation(6, rng)
        profile = locality_profile(sigma)
        full = np.asarray(profile.mrc_full)
        retr = np.asarray(profile.mrc_retraversal)
        # full-trace miss ratio = (m + misses_retraversal) / 2m
        assert np.allclose(full, 0.5 + 0.5 * retr)

    def test_maximal_inversions_constant(self):
        assert max_inversions(8) == 28
