"""Trace containers.

A *trace* is a finite sequence of accesses to integer-labelled data items
(Section II).  Two containers are provided:

:class:`Trace`
    An arbitrary access sequence with convenience statistics and slicing.
:class:`PeriodicTrace`
    The paper's ``T = A σ(A)`` object: a first traversal of ``m`` distinct
    items followed by a re-traversal in permuted order.  It knows its
    generating permutation, so the closed-form locality results of
    :mod:`repro.core.hits` are available directly, and it can materialise the
    concrete access sequence for the trace-level simulators.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from .._util import as_int_array
from ..core.hits import locality_profile
from ..core.permutation import Permutation

__all__ = ["Trace", "PeriodicTrace"]


class Trace:
    """An access trace over integer-labelled data items.

    Parameters
    ----------
    accesses:
        Iterable of item labels (non-negative integers).
    name:
        Optional descriptive name used in reports.
    """

    def __init__(self, accesses: Sequence[int] | np.ndarray, *, name: str = "trace"):
        self._accesses = as_int_array(accesses, "accesses")
        if self._accesses.size and self._accesses.min() < 0:
            raise ValueError("item labels must be non-negative")
        self.name = str(name)

    # -------------------------------------------------------------- #
    @property
    def accesses(self) -> np.ndarray:
        """The access sequence as an integer array (view, do not mutate)."""
        return self._accesses

    def __len__(self) -> int:
        return int(self._accesses.size)

    def __iter__(self) -> Iterator[int]:
        return iter(int(x) for x in self._accesses)

    def __getitem__(self, index):
        result = self._accesses[index]
        if np.isscalar(result) or result.ndim == 0:
            return int(result)
        return Trace(result, name=f"{self.name}[slice]")

    def __eq__(self, other) -> bool:
        if isinstance(other, Trace):
            return np.array_equal(self._accesses, other._accesses)
        return NotImplemented

    def __repr__(self) -> str:
        preview = ", ".join(str(int(x)) for x in self._accesses[:8])
        suffix = ", ..." if len(self) > 8 else ""
        return f"Trace(name={self.name!r}, length={len(self)}, accesses=[{preview}{suffix}])"

    # -------------------------------------------------------------- #
    def distinct_items(self) -> np.ndarray:
        """Sorted array of distinct item labels referenced by the trace."""
        return np.unique(self._accesses)

    @property
    def footprint(self) -> int:
        """Number of distinct items referenced (the working-set size)."""
        return int(self.distinct_items().size)

    def concatenate(self, other: "Trace") -> "Trace":
        """The trace followed by another trace."""
        return Trace(
            np.concatenate([self._accesses, other.accesses]),
            name=f"{self.name}+{other.name}",
        )

    def relabelled(self) -> tuple["Trace", dict[int, int]]:
        """Relabel items densely as ``0..footprint-1`` preserving first-touch order.

        Returns the relabelled trace and the mapping ``old label -> new label``.
        Useful before feeding traces with sparse address labels to the
        permutation-based analyses.
        """
        mapping: dict[int, int] = {}
        out = np.empty_like(self._accesses)
        for pos, item in enumerate(self._accesses):
            key = int(item)
            if key not in mapping:
                mapping[key] = len(mapping)
            out[pos] = mapping[key]
        return Trace(out, name=f"{self.name}(relabelled)"), mapping


@dataclass(frozen=True)
class PeriodicTrace:
    """The paper's periodic trace ``T = A σ(A)`` (Definition 1).

    Attributes
    ----------
    sigma:
        The re-traversal permutation ``σ``; the first traversal is the
        canonical order ``0, 1, ..., m-1``.
    items:
        Optional relabelling of the ``m`` data items; ``items[k]`` is the
        concrete label of canonical item ``k``.
    """

    sigma: Permutation
    items: tuple[int, ...] | None = None

    def __post_init__(self):
        if self.items is not None and len(self.items) != self.sigma.size:
            raise ValueError(f"items has length {len(self.items)}, expected {self.sigma.size}")

    @property
    def m(self) -> int:
        """Number of distinct data items."""
        return self.sigma.size

    def first_traversal(self) -> np.ndarray:
        """The accesses of ``A`` (canonical or relabelled order)."""
        base = np.arange(self.m, dtype=np.intp)
        if self.items is not None:
            base = np.asarray(self.items, dtype=np.intp)
        return base

    def second_traversal(self) -> np.ndarray:
        """The accesses of ``B = σ(A)``."""
        return self.first_traversal()[np.asarray(self.sigma.one_line, dtype=np.intp)]

    def to_trace(self) -> Trace:
        """Materialise the concrete ``2m``-access sequence."""
        return Trace(
            np.concatenate([self.first_traversal(), self.second_traversal()]),
            name=f"periodic(m={self.m}, ell={self.sigma.inversions()})",
        )

    def profile(self):
        """The closed-form :class:`repro.core.hits.LocalityProfile` of the re-traversal."""
        return locality_profile(self.sigma)

    @classmethod
    def cyclic(cls, m: int) -> "PeriodicTrace":
        """The cyclic (streaming) re-traversal — identity permutation, worst locality."""
        return cls(Permutation.identity(m))

    @classmethod
    def sawtooth(cls, m: int) -> "PeriodicTrace":
        """The sawtooth re-traversal — reverse permutation, best locality."""
        return cls(Permutation.reverse(m))
