"""Move-cost-aware re-allocation decisions over fresh windowed profiles.

The static optimizer in :mod:`repro.alloc` answers "what split is best for
this whole trace"; online the question becomes "is the split suggested by the
*current window* worth the cost of moving to it".  Re-partitioning is not
free: every cache block a tenant gains arrives cold and must be re-fetched
(and blocks taken from a tenant destroy its warm contents), so chasing every
wiggle of the windowed profiles churns the cache for nothing.

:class:`ReallocationController` makes the decision deterministic: it re-runs
one of the :mod:`repro.alloc.allocators` (``greedy`` | ``dp`` | ``hull``) on
the fresh per-tenant curves, prices the proposal as

``predicted_gain = (miss_ratio(current) - miss_ratio(proposal)) * horizon``

misses saved over the caller's horizon (typically one epoch), prices the move
as ``move_cost`` warm-up misses per block that changes hands, and applies the
proposal only when the gain strictly exceeds the penalty.  Callers may force
the comparison on a phase-change flag or call it every epoch; either way the
move-cost gate is what keeps the partition stable under stationary traffic.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .._util import check_positive_int
from ..alloc.allocators import dp_allocate, greedy_allocate, hull_allocate
from ..alloc.curves import DiscretizedMRC
from ..obs import get_registry

__all__ = ["ReallocationDecision", "ReallocationController"]

_ALLOCATORS = {"greedy": greedy_allocate, "dp": dp_allocate, "hull": hull_allocate}

#: Move-size buckets of the ``controller.moved_blocks`` histogram.
_MOVED_BLOCKS_EDGES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


class ReallocationDecision:
    """Outcome of one controller evaluation.

    Attributes
    ----------
    applied:
        Whether the proposal should replace the current allocation.
    allocation:
        The allocation to run with next (the proposal if applied, else the
        unchanged current allocation), in blocks per tenant.
    predicted_gain:
        Misses the proposal is predicted to save over the horizon.
    penalty:
        Warm-up miss cost of moving (``move_cost × blocks changing hands``).
    moved_blocks:
        Number of cache blocks the proposal hands to a different tenant.
    """

    __slots__ = ("applied", "allocation", "predicted_gain", "penalty", "moved_blocks")

    def __init__(self, *, applied: bool, allocation: tuple[int, ...], predicted_gain: float, penalty: float,
                 moved_blocks: int):
        self.applied = bool(applied)
        self.allocation = tuple(int(c) for c in allocation)
        self.predicted_gain = float(predicted_gain)
        self.penalty = float(penalty)
        self.moved_blocks = int(moved_blocks)


class ReallocationController:
    """Decide whether fresh windowed profiles justify re-partitioning.

    Parameters
    ----------
    budget:
        Shared cache capacity in blocks.
    method:
        Allocator re-run on every evaluation: ``greedy`` | ``dp`` | ``hull``.
    unit:
        Allocation granularity in blocks (allocators hand out whole units).
    move_cost:
        Warm-up misses charged per block that changes hands; ``0`` makes the
        controller apply any strictly-improving proposal.
    """

    def __init__(self, *, budget: int, method: str = "hull", unit: int = 1, move_cost: float = 1.0):
        if method not in _ALLOCATORS:
            raise ValueError(f"method must be one of {tuple(_ALLOCATORS)}, got {method!r}")
        self.budget = check_positive_int(budget, "budget")
        self.unit = check_positive_int(unit, "unit")
        if self.unit > self.budget:
            raise ValueError(f"unit ({unit}) cannot exceed the budget ({budget})")
        if float(move_cost) < 0.0:
            raise ValueError(f"move_cost must be >= 0, got {move_cost}")
        self.method = method
        self.move_cost = float(move_cost)
        self.evaluations = 0
        self.applications = 0

    def propose(self, curves: Sequence[DiscretizedMRC]) -> tuple[int, ...]:
        """The allocator's preferred split (blocks per tenant) for these curves.

        Allocators stop handing out units once every marginal gain is zero,
        which on *windowed* (sampled, truncated) profiles routinely strands
        part of the budget just below a tenant's true footprint.  Idle cache
        serves nobody, so the leftover is topped up proportionally to the
        allocated shares (largest-remainder rounding; equal split when the
        allocator assigned nothing at all) — headroom against the window
        under-estimating a working set.
        """
        budget_units = self.budget // self.unit
        units = np.asarray(_ALLOCATORS[self.method](curves, budget_units), dtype=np.int64)
        leftover = budget_units - int(units.sum())
        if leftover > 0:
            weights = units.astype(np.float64)
            if weights.sum() == 0.0:
                weights = np.ones(units.size, dtype=np.float64)
            shares = weights / weights.sum() * leftover
            grant = np.floor(shares).astype(np.int64)
            remainder = leftover - int(grant.sum())
            # Largest fractional remainders first; ties break to low indices.
            order = np.argsort(-(shares - np.floor(shares)), kind="stable")
            grant[order[:remainder]] += 1
            units = units + grant
        return tuple(int(u) * self.unit for u in units)

    def decide(
        self,
        curves: Sequence[DiscretizedMRC],
        current: Sequence[int],
        *,
        horizon: int,
    ) -> ReallocationDecision:
        """Evaluate a re-partition of ``current`` against the fresh ``curves``.

        ``horizon`` is the number of accesses the new partition is expected to
        serve before the next evaluation (typically the epoch length); the
        predicted miss-ratio gap between the current and proposed allocations
        is scaled by it to compare against the one-off move penalty.
        """
        current = tuple(int(c) for c in current)
        if len(current) != len(curves):
            raise ValueError(f"current allocation has {len(current)} entries for {len(curves)} tenants")
        horizon = check_positive_int(horizon, "horizon")
        self.evaluations += 1
        registry = get_registry()
        registry.counter("controller.evaluations", method=self.method).inc()
        proposal = self.propose(curves)
        if proposal == current:
            return ReallocationDecision(
                applied=False, allocation=current, predicted_gain=0.0, penalty=0.0, moved_blocks=0
            )
        # Weight each tenant's predicted ratio by its share of the windowed
        # accesses so the gain is in expected misses over the shared stream.
        total_accesses = float(sum(curve.accesses for curve in curves))
        current_misses = 0.0
        proposed_misses = 0.0
        for curve, old, new in zip(curves, current, proposal):
            share = curve.accesses / total_accesses
            current_misses += share * curve.miss_ratio_at(old // self.unit)
            proposed_misses += share * curve.miss_ratio_at(new // self.unit)
        gain = (current_misses - proposed_misses) * horizon
        moved = int(sum(max(new - old, 0) for old, new in zip(current, proposal)))
        penalty = self.move_cost * moved
        applied = gain > penalty
        if applied:
            self.applications += 1
            registry.counter("controller.applications", method=self.method).inc()
            registry.histogram("controller.moved_blocks", _MOVED_BLOCKS_EDGES, method=self.method).observe(moved)
        return ReallocationDecision(
            applied=applied,
            allocation=proposal if applied else current,
            predicted_gain=gain,
            penalty=penalty,
            moved_blocks=moved,
        )
