"""Unit tests for the phase-change detector."""

from __future__ import annotations

import pytest

from repro.cache.mrc import MissRatioCurve
from repro.online import PhaseChangeDetector, WindowedShardsSketch
from repro.trace.drift import working_set_migration


def flat_curve(level: float) -> MissRatioCurve:
    return MissRatioCurve(ratios=(level, level, level), accesses=100)


class TestDetectorMechanics:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PhaseChangeDetector(threshold=0.0)
        with pytest.raises(ValueError):
            PhaseChangeDetector(threshold=0.1, hysteresis=0)

    def test_first_observation_anchors_reference(self):
        detector = PhaseChangeDetector(threshold=0.1)
        observation = detector.observe(flat_curve(0.5))
        assert not observation.changed and observation.distance == 0.0
        assert detector.reference is not None

    def test_hysteresis_requires_consecutive_excursions(self):
        detector = PhaseChangeDetector(threshold=0.1, hysteresis=3)
        detector.observe(flat_curve(0.2))
        assert not detector.observe(flat_curve(0.8)).changed
        assert not detector.observe(flat_curve(0.8)).changed
        assert detector.observe(flat_curve(0.8)).changed
        assert detector.changes == 1

    def test_excursion_streak_resets_on_return(self):
        detector = PhaseChangeDetector(threshold=0.1, hysteresis=2)
        detector.observe(flat_curve(0.2))
        assert not detector.observe(flat_curve(0.8)).changed  # armed
        assert not detector.observe(flat_curve(0.2)).changed  # back on reference
        assert not detector.observe(flat_curve(0.8)).changed  # armed again, not flagged
        assert detector.changes == 0

    def test_reanchors_after_change(self):
        detector = PhaseChangeDetector(threshold=0.1, hysteresis=1)
        detector.observe(flat_curve(0.2))
        assert detector.observe(flat_curve(0.8)).changed
        assert not detector.observe(flat_curve(0.8)).changed
        assert detector.observe(flat_curve(0.2)).changed
        assert detector.changes == 2

    def test_stationary_noise_below_threshold_never_flags(self):
        detector = PhaseChangeDetector(threshold=0.2, hysteresis=1)
        for level in (0.5, 0.52, 0.48, 0.51, 0.5):
            assert not detector.observe(flat_curve(level)).changed


class TestDetectorOnWindowedProfiles:
    def test_flags_working_set_migration_exactly_once(self):
        """A windowed profile stream over a migrating trace flags one change."""
        phased = working_set_migration(3000, [(0, 100), (500, 400)], seed=3)
        sketch = WindowedShardsSketch(window=1500, rate=1.0)
        detector = PhaseChangeDetector(threshold=0.08, hysteresis=1)
        flags = []
        trace = phased.trace.accesses
        for start in range(0, trace.size, 500):
            sketch.update(trace[start : start + 500])
            flags.append(detector.observe(sketch.curve()).changed)
        assert sum(flags) == 1
        # the flag lands after the boundary at position 3000 (epoch index 6+)
        assert flags.index(True) >= 6
