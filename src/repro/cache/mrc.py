"""Miss-ratio curves for arbitrary traces.

``MRC(T)`` (Definition 2) maps each cache size to the miss ratio of the trace
under a fully-associative LRU cache.  This module builds the curve either in
one pass from stack distances (exact, the default) or by independently
simulating each cache size with :class:`repro.cache.lru.LRUCache` (slow; used
as a cross-check in the test-suite).

It also provides convenience wrappers for the paper's periodic traces so the
closed-form curves of :func:`repro.core.hits.miss_ratio_curve` can be compared
against trace-level measurement, and an element-wise averaging helper used by
the Figure 1 experiment.

Both construction paths here are *exact* and cost at least ``O(N log N)`` in
the trace length; for long traces :mod:`repro.profiling` builds approximate
curves at a fraction of the cost (SHARDS sampling at rate ``R`` does roughly
``R`` times the work, the one-pass reuse-time model never materialises the
trace), with the accuracy loss measured by
:mod:`repro.profiling.accuracy` — typically a mean absolute error around
``0.01`` at ``R = 0.01``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from .lru import LRUCache
from .stack_distance import hit_counts

__all__ = [
    "MissRatioCurve",
    "mrc_from_trace",
    "mrc_by_simulation",
    "average_curves",
]


@dataclass(frozen=True)
class MissRatioCurve:
    """A miss-ratio curve: ``ratios[c - 1]`` is the miss ratio at cache size ``c``.

    The curve is monotonically non-increasing for LRU (a larger cache never
    hurts, by the stack inclusion property).
    """

    ratios: tuple[float, ...]
    accesses: int

    def __post_init__(self):
        if not self.ratios:
            raise ValueError("a miss-ratio curve needs at least one cache size")

    @property
    def max_cache_size(self) -> int:
        """Number of cache sizes the curve covers."""
        return len(self.ratios)

    def __getitem__(self, cache_size: int) -> float:
        """Miss ratio at a given cache size (sizes beyond the curve reuse the last value)."""
        if cache_size < 1:
            raise ValueError(f"cache size must be >= 1, got {cache_size}")
        index = min(cache_size, len(self.ratios)) - 1
        return self.ratios[index]

    def as_array(self) -> np.ndarray:
        """The miss ratios as a ``float64`` array (index ``c - 1`` is cache size ``c``)."""
        return np.asarray(self.ratios, dtype=np.float64)

    def footprint(self, target_miss_ratio: float) -> int | None:
        """Smallest cache size whose miss ratio is at most ``target_miss_ratio`` (or ``None``).

        Binary search over the monotone curve: the reversed ratios are
        non-decreasing, so the count of ratios at or below the target locates
        the answer in ``O(log n)``.
        """
        reversed_ratios = self.as_array()[::-1]
        at_or_below = int(np.searchsorted(reversed_ratios, target_miss_ratio, side="right"))
        if at_or_below == 0:
            return None
        return len(self.ratios) - at_or_below + 1


def mrc_from_trace(trace: Sequence[int] | np.ndarray, *, max_cache_size: int | None = None) -> MissRatioCurve:
    """Exact LRU miss-ratio curve of a trace from its stack-distance histogram."""
    arr = np.asarray(trace)
    if arr.size == 0:
        raise ValueError("cannot build a miss-ratio curve for an empty trace")
    hits = hit_counts(arr, max_cache_size=max_cache_size)
    ratios = 1.0 - hits.astype(np.float64) / arr.size
    return MissRatioCurve(ratios=tuple(ratios.tolist()), accesses=int(arr.size))


def mrc_by_simulation(trace: Sequence[int] | np.ndarray, cache_sizes: Iterable[int]) -> dict[int, float]:
    """Miss ratios measured by running an independent LRU simulation per cache size.

    Quadratically slower than :func:`mrc_from_trace`; intended for validation
    and for small traces.
    """
    arr = np.asarray(trace)
    out: dict[int, float] = {}
    for c in cache_sizes:
        cache = LRUCache(int(c))
        stats = cache.run(int(x) for x in arr)
        out[int(c)] = stats.miss_ratio
    return out


def average_curves(curves: Sequence[MissRatioCurve] | Sequence[Sequence[float]]) -> np.ndarray:
    """Element-wise average of equally long miss-ratio curves.

    This is the aggregation used for Figure 1: the average curve of all
    permutations sharing an inversion number.
    """
    if not curves:
        raise ValueError("need at least one curve to average")
    arrays = [c.as_array() if isinstance(c, MissRatioCurve) else np.asarray(c, dtype=np.float64) for c in curves]
    length = arrays[0].size
    if any(a.size != length for a in arrays):
        raise ValueError("all curves must have the same length")
    return np.mean(np.vstack(arrays), axis=0)
