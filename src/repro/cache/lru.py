"""Fully-associative LRU cache — the reference model of the paper.

The theory of symmetric locality is stated for a fully-associative cache with
least-recently-used replacement; :class:`LRUCache` is the direct,
access-by-access simulation of that model.  Tests cross-validate the
closed-form cache-hit vectors of :func:`repro.core.hits.cache_hit_vector`
against replaying the concrete periodic trace through this simulator at every
cache size.

The implementation keeps the recency order in an ``OrderedDict`` so each
access costs amortised ``O(1)``.
"""

from __future__ import annotations

from collections import OrderedDict

from .base import CacheModel

__all__ = ["LRUCache"]


class LRUCache(CacheModel):
    """Fully-associative cache with least-recently-used replacement.

    Parameters
    ----------
    capacity:
        Number of items (cache blocks) the cache can hold.

    Examples
    --------
    >>> cache = LRUCache(2)
    >>> [cache.access(x) for x in [0, 1, 0, 2, 1]]
    [False, False, True, False, False]
    """

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._entries: OrderedDict[int, None] = OrderedDict()

    @property
    def name(self) -> str:
        """Policy name used in reports."""
        return "lru"

    def access(self, item: int) -> bool:
        """Access one item; return ``True`` on a hit."""
        entries = self._entries
        if item in entries:
            entries.move_to_end(item)
            return True
        if len(entries) >= self.capacity:
            entries.popitem(last=False)
            self.stats.evictions += 1
        entries[item] = None
        return False

    def contents(self) -> set[int]:
        """The set of items currently cached."""
        return set(self._entries)

    def recency_order(self) -> list[int]:
        """Resident items from least to most recently used (the LRU stack, bottom up)."""
        return list(self._entries)

    def _reset_state(self) -> None:
        self._entries = OrderedDict()
